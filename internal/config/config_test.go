package config

import (
	"math"
	"testing"
)

func TestDDR4Derived(t *testing.T) {
	tm := DDR4()
	if got := tm.RefreshOpsPerWindow(); got != 8192 {
		t.Errorf("RefreshOpsPerWindow = %d, want 8192", got)
	}
	// Paper: ~1.36 million activations possible in the 64 ms window.
	acts := tm.MaxActivations()
	if acts < 1_300_000 || acts > 1_400_000 {
		t.Errorf("MaxActivations = %d, want ~1.36M", acts)
	}
	// t_actual = 64ms - 8192*350ns.
	want := 64*Millisecond - 8192*350
	if math.Abs(tm.ActiveTime()-want) > 1 {
		t.Errorf("ActiveTime = %g, want %g", tm.ActiveTime(), want)
	}
}

func TestDDR5HalvesRefreshInterval(t *testing.T) {
	d4, d5 := DDR4(), DDR5()
	if d5.TREFI != d4.TREFI/2 {
		t.Errorf("DDR5 TREFI = %g, want %g", d5.TREFI, d4.TREFI/2)
	}
	if d5.RefreshWindow != d4.RefreshWindow/2 {
		t.Errorf("DDR5 RefreshWindow = %g, want %g", d5.RefreshWindow, d4.RefreshWindow/2)
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := DefaultGeometry()
	if got, want := g.TotalBytes(), int64(32)<<30; got != want {
		t.Errorf("TotalBytes = %d, want %d (32 GB)", got, want)
	}
	if got := g.TotalBanks(); got != 32 {
		t.Errorf("TotalBanks = %d, want 32", got)
	}
	if got := g.LinesPerRow(); got != 128 {
		t.Errorf("LinesPerRow = %d, want 128", got)
	}
}

func TestLLCSets(t *testing.T) {
	l := DefaultLLC()
	if got := l.Sets(); got != 8192 {
		t.Errorf("Sets = %d, want 8192", got)
	}
}

func TestMitigationTS(t *testing.T) {
	tests := []struct {
		name string
		m    Mitigation
		want int
	}{
		{"rrs-4800", DefaultRRS(4800), 800},
		{"rrs-1200", DefaultRRS(1200), 200},
		{"srs-4800", DefaultSRS(4800), 800},
		{"scale-4800", DefaultScaleSRS(4800), 1600},
		{"scale-1200", DefaultScaleSRS(1200), 400},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.m.TS(); got != tt.want {
				t.Errorf("TS() = %d, want %d", got, tt.want)
			}
			if err := tt.m.Validate(); err != nil {
				t.Errorf("Validate() = %v", err)
			}
		})
	}
}

func TestMitigationValidateErrors(t *testing.T) {
	bad := []Mitigation{
		{Kind: MitigationRRS, TRH: 0, SwapRate: 6},
		{Kind: MitigationRRS, TRH: 4800, SwapRate: 0},
		{Kind: MitigationRRS, TRH: 3, SwapRate: 6},
		{Kind: MitigationScaleSRS, TRH: 4800, SwapRate: 3, OutlierSwaps: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error for %+v", i, m)
		}
	}
	if err := (Mitigation{Kind: MitigationNone}).Validate(); err != nil {
		t.Errorf("baseline Validate() = %v, want nil", err)
	}
}

func TestSystemValidate(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatalf("Default().Validate() = %v", err)
	}
	s.Geometry.RowBytes = 100 // not a multiple of 64
	if err := s.Validate(); err == nil {
		t.Error("Validate() accepted row size not a multiple of line size")
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		MitigationNone.String():     "baseline",
		MitigationRRS.String():      "rrs",
		MitigationSRS.String():      "srs",
		MitigationScaleSRS.String(): "scale-srs",
		TrackerMisraGries.String():  "misra-gries",
		TrackerHydra.String():       "hydra",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if MitigationKind(99).String() == "" || TrackerKind(99).String() == "" {
		t.Error("unknown kinds should still produce a string")
	}
}

func TestThresholdHistory(t *testing.T) {
	h := RHThresholdHistory()
	if len(h) != 6 {
		t.Fatalf("history has %d entries, want 6", len(h))
	}
	if h[0].TRH != 139_000 || h[len(h)-1].TRH != 4_800 {
		t.Errorf("history endpoints wrong: %+v", h)
	}
	f := ThresholdReductionFactor()
	if f < 28 || f > 30 {
		t.Errorf("ThresholdReductionFactor = %.1f, want ~29", f)
	}
}

func TestSwapLatencies(t *testing.T) {
	s := Default()
	if s.SwapLatency() != 2.7*Microsecond {
		t.Errorf("SwapLatency = %g", s.SwapLatency())
	}
	if s.ReswapLatency() != 2*s.SwapLatency() {
		t.Errorf("ReswapLatency = %g, want 2x swap", s.ReswapLatency())
	}
}

func TestComparatorDefaults(t *testing.T) {
	b := DefaultBlockHammer(4800)
	if b.Kind != MitigationBlockHammer || b.TS() != 800 {
		t.Errorf("BlockHammer default wrong: %+v", b)
	}
	if b.Kind.String() != "blockhammer" {
		t.Errorf("String = %q", b.Kind.String())
	}
	a := DefaultAQUA(4800)
	if a.Kind != MitigationAQUA || a.TS() != 800 {
		t.Errorf("AQUA default wrong: %+v", a)
	}
	if a.Kind.String() != "aqua" {
		t.Errorf("String = %q", a.Kind.String())
	}
	if err := b.Validate(); err != nil {
		t.Error(err)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSwapScaleCompression(t *testing.T) {
	s := Default()
	s.SwapScale = 0.5
	if s.SwapLatency() != 1.35*Microsecond {
		t.Errorf("scaled SwapLatency = %g", s.SwapLatency())
	}
	s.SwapScale = 0 // unset means real latency
	if s.SwapLatency() != 2.7*Microsecond {
		t.Errorf("unscaled SwapLatency = %g", s.SwapLatency())
	}
}
