// Package config holds the system configuration used throughout the
// reproduction: DDR4 device timing, memory-system geometry, core
// parameters, and the Row Hammer mitigation parameters studied in the
// paper (Table III of Woo et al., HPCA 2023).
//
// All durations are expressed in nanoseconds (float64) for the analytical
// models and converted to integer cycles by the cycle-level simulator.
package config

import "fmt"

// Time unit helpers. The analytical models in internal/attack work in
// nanoseconds; the cycle simulator multiplies by clock frequency.
const (
	Nanosecond  = 1.0
	Microsecond = 1e3 * Nanosecond
	Millisecond = 1e6 * Nanosecond
	Second      = 1e9 * Nanosecond
	Minute      = 60 * Second
	Hour        = 60 * Minute
	Day         = 24 * Hour
	Year        = 365 * Day
)

// Timing captures the DRAM timing parameters relevant to Row Hammer
// analysis and to the cycle-level DDR4 model (Table III).
type Timing struct {
	TRCD   float64 // ACT -> column command delay (ns)
	TRP    float64 // PRE -> ACT delay (ns)
	TCAS   float64 // column command -> first data (ns), a.k.a. CL
	TRC    float64 // ACT -> ACT to the same bank (ns)
	TRAS   float64 // ACT -> PRE minimum (ns)
	TRFC   float64 // refresh cycle time (ns)
	TREFI  float64 // average refresh interval (ns)
	TBURST float64 // data burst occupancy of the bus for one 64B line (ns)
	TRRD   float64 // ACT -> ACT different banks, same rank (ns)
	TWR    float64 // write recovery (ns)

	RefreshWindow float64 // retention / Row Hammer accounting window (ns), typically 64 ms
}

// DDR4 returns the DDR4-3200 timing assumed by the paper: 14-14-14 (ns),
// tRC = 45 ns, tRFC = 350 ns, tREFI = 7.8 us, with a 64 ms refresh window.
func DDR4() Timing {
	return Timing{
		TRCD:          14,
		TRP:           14,
		TCAS:          14,
		TRC:           45,
		TRAS:          31, // tRC - tRP
		TRFC:          350,
		TREFI:         7812.5, // 64 ms / 8192 refresh commands (reported as 7.8 us)
		TBURST:        2.5,    // 4 bus cycles at 1.6 GHz DDR (8 beats)
		TRRD:          5,
		TWR:           15,
		RefreshWindow: 64 * Millisecond,
	}
}

// DDR5 returns a DDR5-like variant that refreshes twice as often
// (tREFI halved, 32 ms accounting window), used by the §VIII-5
// "future DRAM generations" analysis.
func DDR5() Timing {
	t := DDR4()
	t.TREFI /= 2
	t.RefreshWindow = 32 * Millisecond
	return t
}

// RefreshOpsPerWindow returns the number of auto-refresh commands a bank
// experiences within one refresh window (8192 for DDR4: 64 ms / 7.8 us).
func (t Timing) RefreshOpsPerWindow() int {
	return int(t.RefreshWindow / t.TREFI)
}

// ActiveTime returns t_actual (Equation 4): the window time available for
// row activations after subtracting refresh penalties.
func (t Timing) ActiveTime() float64 {
	return t.RefreshWindow - t.TRFC*float64(t.RefreshOpsPerWindow())
}

// MaxActivations returns ACT_max: the maximum number of activate commands
// a single bank can receive in one refresh window (~1.36 M for DDR4).
func (t Timing) MaxActivations() int {
	return int(t.ActiveTime() / t.TRC)
}

// Geometry describes the memory-system organization (Table III).
type Geometry struct {
	Channels    int
	RanksPerCh  int
	BanksPerRnk int
	RowsPerBank int
	RowBytes    int
	LineBytes   int
}

// DefaultGeometry returns the 32 GB system of Table III:
// 2 channels x 1 rank x 16 banks x 128K rows x 8 KB rows.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:    2,
		RanksPerCh:  1,
		BanksPerRnk: 16,
		RowsPerBank: 128 * 1024,
		RowBytes:    8 * 1024,
		LineBytes:   64,
	}
}

// TotalBytes returns the memory capacity implied by the geometry.
func (g Geometry) TotalBytes() int64 {
	return int64(g.Channels) * int64(g.RanksPerCh) * int64(g.BanksPerRnk) *
		int64(g.RowsPerBank) * int64(g.RowBytes)
}

// TotalBanks returns the number of independent banks in the system.
func (g Geometry) TotalBanks() int {
	return g.Channels * g.RanksPerCh * g.BanksPerRnk
}

// LinesPerRow returns the number of cache lines stored in one DRAM row.
func (g Geometry) LinesPerRow() int { return g.RowBytes / g.LineBytes }

// Core describes the processor model (Table III).
type Core struct {
	Cores       int
	ClockGHz    float64
	ROBSize     int
	FetchWidth  int
	RetireWidth int
}

// DefaultCore returns the 8-core, 3.2 GHz, 192-entry-ROB, 4-wide
// configuration of Table III.
func DefaultCore() Core {
	return Core{Cores: 8, ClockGHz: 3.2, ROBSize: 192, FetchWidth: 4, RetireWidth: 4}
}

// LLC describes the shared last-level cache (Table III).
type LLC struct {
	Bytes     int
	Ways      int
	LineBytes int
}

// DefaultLLC returns the 8 MB, 16-way, 64 B-line shared LLC.
func DefaultLLC() LLC {
	return LLC{Bytes: 8 * 1024 * 1024, Ways: 16, LineBytes: 64}
}

// Sets returns the number of cache sets.
func (l LLC) Sets() int { return l.Bytes / (l.Ways * l.LineBytes) }

// MitigationKind selects the Row Hammer defense under evaluation.
type MitigationKind int

// The mitigation mechanisms evaluated in the paper.
const (
	MitigationNone        MitigationKind = iota // unprotected baseline
	MitigationRRS                               // Randomized Row-Swap (ASPLOS'22)
	MitigationSRS                               // Secure Row-Swap (this paper, §IV)
	MitigationScaleSRS                          // Scalable and Secure Row-Swap (§V)
	MitigationBlockHammer                       // throttling comparator (§IX-A)
	MitigationAQUA                              // quarantine comparator (§IX-A)
)

// String implements fmt.Stringer.
func (k MitigationKind) String() string {
	switch k {
	case MitigationNone:
		return "baseline"
	case MitigationRRS:
		return "rrs"
	case MitigationSRS:
		return "srs"
	case MitigationScaleSRS:
		return "scale-srs"
	case MitigationBlockHammer:
		return "blockhammer"
	case MitigationAQUA:
		return "aqua"
	default:
		return fmt.Sprintf("mitigation(%d)", int(k))
	}
}

// TrackerKind selects the aggressor-row tracker.
type TrackerKind int

// The trackers evaluated in the paper (§II-D, Figs. 14 and 16).
const (
	TrackerMisraGries TrackerKind = iota // Graphene/RRS-style frequent-item tracker
	TrackerHydra                         // Hydra hybrid tracker (ISCA'22)
)

// String implements fmt.Stringer.
func (k TrackerKind) String() string {
	switch k {
	case TrackerMisraGries:
		return "misra-gries"
	case TrackerHydra:
		return "hydra"
	default:
		return fmt.Sprintf("tracker(%d)", int(k))
	}
}

// Mitigation holds the Row Hammer defense parameters.
type Mitigation struct {
	Kind    MitigationKind
	Tracker TrackerKind

	TRH      int // Row Hammer threshold T_RH
	SwapRate int // T_RH / T_S

	// ImmediateUnswap selects RRS's unswap-before-reswap behaviour
	// (the paper's default RRS). Setting it false produces the
	// "No Unswap" chained-swap variant of Fig. 4.
	ImmediateUnswap bool

	// OutlierSwaps is the swap count at which Scale-SRS classifies a row
	// as an outlier and pins it in the LLC (3 in the paper: counter
	// value >= 3*T_S).
	OutlierSwaps int
}

// TS returns the swap threshold T_S = T_RH / SwapRate.
func (m Mitigation) TS() int {
	if m.SwapRate <= 0 {
		return 0
	}
	return m.TRH / m.SwapRate
}

// Validate reports configuration errors.
func (m Mitigation) Validate() error {
	if m.Kind == MitigationNone {
		return nil
	}
	if m.TRH <= 0 {
		return fmt.Errorf("config: TRH must be positive, got %d", m.TRH)
	}
	if m.SwapRate <= 0 {
		return fmt.Errorf("config: SwapRate must be positive, got %d", m.SwapRate)
	}
	if m.TS() <= 0 {
		return fmt.Errorf("config: T_S = TRH/SwapRate = %d/%d is zero", m.TRH, m.SwapRate)
	}
	if m.Kind == MitigationScaleSRS && m.OutlierSwaps <= 0 {
		return fmt.Errorf("config: Scale-SRS requires OutlierSwaps > 0")
	}
	return nil
}

// DefaultRRS returns the RRS configuration used throughout the paper:
// swap rate 6 with immediate unswaps.
func DefaultRRS(trh int) Mitigation {
	return Mitigation{
		Kind:            MitigationRRS,
		Tracker:         TrackerMisraGries,
		TRH:             trh,
		SwapRate:        6,
		ImmediateUnswap: true,
	}
}

// DefaultSRS returns the SRS configuration (§IV): swap rate 6, swap-only.
func DefaultSRS(trh int) Mitigation {
	return Mitigation{
		Kind:     MitigationSRS,
		Tracker:  TrackerMisraGries,
		TRH:      trh,
		SwapRate: 6,
	}
}

// DefaultScaleSRS returns the Scale-SRS configuration (§V): swap rate 3
// with outlier pinning after 3 swaps.
func DefaultScaleSRS(trh int) Mitigation {
	return Mitigation{
		Kind:         MitigationScaleSRS,
		Tracker:      TrackerMisraGries,
		TRH:          trh,
		SwapRate:     3,
		OutlierSwaps: 3,
	}
}

// DefaultBlockHammer returns the §IX-A throttling comparator at the same
// tracking granularity as RRS.
func DefaultBlockHammer(trh int) Mitigation {
	return Mitigation{
		Kind:     MitigationBlockHammer,
		Tracker:  TrackerMisraGries,
		TRH:      trh,
		SwapRate: 6,
	}
}

// DefaultAQUA returns the §IX-A quarantine comparator: migration at the
// same threshold RRS would swap at.
func DefaultAQUA(trh int) Mitigation {
	return Mitigation{
		Kind:     MitigationAQUA,
		Tracker:  TrackerMisraGries,
		TRH:      trh,
		SwapRate: 6,
	}
}

// System aggregates the full configuration of a simulated machine.
type System struct {
	Timing     Timing
	Geometry   Geometry
	Core       Core
	LLC        LLC
	Mitigation Mitigation

	Seed uint64 // root seed for all randomized structures

	// SwapScale optionally compresses the swap blocking latencies for
	// time-compressed simulation (0 or 1 = real 2.7 us / 5.4 us values).
	SwapScale float64
}

// Default returns the baseline system of Table III with no mitigation.
func Default() System {
	return System{
		Timing:   DDR4(),
		Geometry: DefaultGeometry(),
		Core:     DefaultCore(),
		LLC:      DefaultLLC(),
		Seed:     0x5ca1ab1e,
	}
}

// Validate reports configuration errors across all sections.
func (s System) Validate() error {
	if s.Geometry.Channels <= 0 || s.Geometry.BanksPerRnk <= 0 ||
		s.Geometry.RowsPerBank <= 0 || s.Geometry.RowBytes <= 0 {
		return fmt.Errorf("config: invalid geometry %+v", s.Geometry)
	}
	if s.Geometry.RowBytes%s.Geometry.LineBytes != 0 {
		return fmt.Errorf("config: row size %d not a multiple of line size %d",
			s.Geometry.RowBytes, s.Geometry.LineBytes)
	}
	if s.Core.Cores <= 0 || s.Core.ROBSize <= 0 || s.Core.RetireWidth <= 0 {
		return fmt.Errorf("config: invalid core %+v", s.Core)
	}
	if s.LLC.Bytes <= 0 || s.LLC.Ways <= 0 || s.LLC.Sets() <= 0 {
		return fmt.Errorf("config: invalid LLC %+v", s.LLC)
	}
	return s.Mitigation.Validate()
}

// SwapLatency returns t_swap: the latency of a single swap operation
// (2.7 us in the paper — reading and writing two 8 KB rows through the
// controller's swap buffer), scaled by SwapScale if set.
func (s System) SwapLatency() float64 { return 2.7 * Microsecond * s.swapScale() }

// ReswapLatency returns t_reswap: the latency of an unswap-swap pair
// (5.4 us in the paper), scaled by SwapScale if set.
func (s System) ReswapLatency() float64 { return 5.4 * Microsecond * s.swapScale() }

func (s System) swapScale() float64 {
	if s.SwapScale <= 0 {
		return 1
	}
	return s.SwapScale
}
