package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// fixedStream yields a repeating record.
type fixedStream struct {
	rec trace.Record
}

func (s *fixedStream) Next() trace.Record { return s.rec }
func (s *fixedStream) Name() string       { return "fixed" }

// constIssuer completes every memory op after a fixed latency.
type constIssuer struct {
	latency Cycles
	issued  int64
}

func (i *constIssuer) Issue(_ int, _ trace.Record, now Cycles) Cycles {
	i.issued++
	return now + i.latency
}

func run(c *Core) Cycles {
	var now Cycles
	for !c.Done() {
		c.Tick(now)
		now++
		if now > 100_000_000 {
			panic("core never finished")
		}
	}
	return now
}

func TestPureComputeIPCEqualsWidth(t *testing.T) {
	// A stream of non-memory instructions with a zero-latency memory op
	// every 1000 instructions retires at ~RetireWidth IPC.
	cfg := config.DefaultCore()
	st := &fixedStream{rec: trace.Record{Gap: 1000}}
	c := NewCore(0, cfg, st, &constIssuer{latency: 1}, 100_000)
	run(c)
	ipc := c.IPC()
	if ipc < 3.5 || ipc > 4.05 {
		t.Errorf("compute-bound IPC = %.2f, want ~4", ipc)
	}
}

func TestMemoryBoundIPCDropsWithLatency(t *testing.T) {
	cfg := config.DefaultCore()
	// Every other instruction is a memory op.
	mk := func(lat Cycles) float64 {
		st := &fixedStream{rec: trace.Record{Gap: 1}}
		c := NewCore(0, cfg, st, &constIssuer{latency: lat}, 50_000)
		run(c)
		return c.IPC()
	}
	fast, slow := mk(10), mk(400)
	if fast <= slow {
		t.Errorf("IPC should drop with latency: fast=%.3f slow=%.3f", fast, slow)
	}
	if slow > 1.0 {
		t.Errorf("400-cycle-latency every-other-instruction IPC = %.3f, expected memory bound (<1)", slow)
	}
}

func TestROBLimitsOutstandingMisses(t *testing.T) {
	// With a ROB of 192 and all-memory instructions of huge latency,
	// at most ROBSize requests can be outstanding before the core stalls.
	cfg := config.DefaultCore()
	iss := &constIssuer{latency: 1_000_000}
	st := &fixedStream{rec: trace.Record{Gap: 0}}
	c := NewCore(0, cfg, st, iss, 1000)
	for now := Cycles(0); now < 1000; now++ {
		c.Tick(now)
	}
	if iss.issued > int64(cfg.ROBSize) {
		t.Errorf("issued %d memory ops with ROB of %d", iss.issued, cfg.ROBSize)
	}
	if iss.issued < int64(cfg.ROBSize) {
		t.Errorf("issued only %d, want ROB filled (%d)", iss.issued, cfg.ROBSize)
	}
}

func TestMemLevelParallelismOverlapsLatency(t *testing.T) {
	// 100-cycle latency with abundant independent misses should overlap:
	// throughput must far exceed the serial 1-per-100-cycles bound.
	cfg := config.DefaultCore()
	st := &fixedStream{rec: trace.Record{Gap: 10}}
	c := NewCore(0, cfg, st, &constIssuer{latency: 100}, 100_000)
	cycles := run(c)
	serialCycles := Cycles(100_000 / 11 * 100) // one miss per 11 instrs, serialized
	if cycles > serialCycles/2 {
		t.Errorf("took %d cycles; MLP should beat half the serial bound %d", cycles, serialCycles)
	}
}

func TestNextWorkMatchesTickActivity(t *testing.T) {
	// Fill the ROB with huge-latency memory ops; NextWork must then point
	// at the head's completion, and every Tick before it must be a no-op.
	cfg := config.DefaultCore()
	iss := &constIssuer{latency: 5_000}
	st := &fixedStream{rec: trace.Record{Gap: 0}}
	c := NewCore(0, cfg, st, iss, 1000)
	var now Cycles
	for c.NextWork(now) == now+1 {
		c.Tick(now)
		now++
		if now > 10_000 {
			t.Fatal("ROB never filled")
		}
	}
	stall := c.NextWork(now)
	if stall <= now+1 {
		t.Fatalf("stalled core NextWork = %d at now %d", stall, now)
	}
	retired, issued := c.Retired(), iss.issued
	for t2 := now; t2 < stall; t2++ {
		c.Tick(t2)
	}
	if c.Retired() != retired || iss.issued != issued {
		t.Errorf("ticks before NextWork deadline changed state: retired %d->%d issued %d->%d",
			retired, c.Retired(), issued, iss.issued)
	}
	c.Tick(stall)
	if c.Retired() == retired {
		t.Error("tick at NextWork deadline made no progress")
	}
}

// issueEvent records one Issue call for differential comparison.
type issueEvent struct {
	cycle Cycles
	addr  uint64
	write bool
}

// logIssuer completes memory ops after a deterministic rotating latency
// and logs the exact cycle of every Issue call.
type logIssuer struct {
	lats []Cycles
	n    int
	log  []issueEvent
}

func (i *logIssuer) Issue(_ int, rec trace.Record, now Cycles) Cycles {
	i.log = append(i.log, issueEvent{now, rec.Addr, rec.Write})
	lat := i.lats[i.n%len(i.lats)]
	i.n++
	return now + lat
}

// TestEventTickedCoreMatchesCycleTicked is the cpu-level differential
// oracle for compute-stretch batching: a core ticked only at its
// NextWork deadlines must issue every memory operation at exactly the
// same cycle, and retire/finish identically, as a core ticked at every
// cycle. Latencies rotate through short and very long values so the
// run crosses all NextWork regimes (fetching, steady compute stretch,
// ROB-full stall).
func TestEventTickedCoreMatchesCycleTicked(t *testing.T) {
	lats := []Cycles{3, 120, 1, 800, 40, 40, 2, 15_000}
	for _, prof := range []string{"gcc", "povray", "gups", "mcf"} {
		t.Run(prof, func(t *testing.T) {
			p, ok := trace.ProfileByName(prof)
			if !ok {
				t.Fatalf("profile %q missing", prof)
			}
			geo := config.DefaultGeometry()
			cfg := config.DefaultCore()
			const budget = 30_000

			cycIss := &logIssuer{lats: lats}
			cyc := NewCore(0, cfg, trace.NewGenerator(p, geo, 7), cycIss, budget)
			var now Cycles
			for !cyc.Done() {
				cyc.Tick(now)
				now++
				if now > 50_000_000 {
					t.Fatal("cycle-ticked core never finished")
				}
			}

			evtIss := &logIssuer{lats: lats}
			evt := NewCore(0, cfg, trace.NewGenerator(p, geo, 7), evtIss, budget)
			var ticks int64
			now = 0
			for !evt.Done() {
				evt.Tick(now)
				ticks++
				now = evt.NextWork(now)
				if now > 50_000_000 {
					t.Fatal("event-ticked core never finished")
				}
			}

			if len(cycIss.log) != len(evtIss.log) {
				t.Fatalf("issue counts differ: cycle %d, event %d", len(cycIss.log), len(evtIss.log))
			}
			for i := range cycIss.log {
				if cycIss.log[i] != evtIss.log[i] {
					t.Fatalf("issue %d differs: cycle %+v, event %+v", i, cycIss.log[i], evtIss.log[i])
				}
			}
			if cyc.Retired() != evt.Retired() || cyc.FinishCycle() != evt.FinishCycle() ||
				cyc.MemOps != evt.MemOps || cyc.IPC() != evt.IPC() {
				t.Errorf("final state differs:\ncycle: retired=%d finish=%d memops=%d ipc=%g\nevent: retired=%d finish=%d memops=%d ipc=%g",
					cyc.Retired(), cyc.FinishCycle(), cyc.MemOps, cyc.IPC(),
					evt.Retired(), evt.FinishCycle(), evt.MemOps, evt.IPC())
			}
			if ticks >= cyc.FinishCycle() {
				t.Errorf("event ticking did not skip any cycles: %d ticks over %d cycles", ticks, cyc.FinishCycle())
			}
		})
	}
}

// TestComputeStretchIsBatched pins down the fast-forward win on a
// compute-only stream: the number of Ticks needed must be far below the
// number of simulated cycles, and the budget crossing must be observed
// at its exact cycle even when it falls inside a batched stretch.
func TestComputeStretchIsBatched(t *testing.T) {
	cfg := config.DefaultCore()
	st := &fixedStream{rec: trace.Record{Gap: 10_000}}
	c := NewCore(0, cfg, st, &constIssuer{latency: 1}, 100_000)
	var now Cycles
	var ticks int64
	for !c.Done() {
		c.Tick(now)
		ticks++
		now = c.NextWork(now)
		if now > 10_000_000 {
			t.Fatal("never finished")
		}
	}
	// Reference: per-cycle ticking of an identical core.
	ref := NewCore(0, cfg, &fixedStream{rec: trace.Record{Gap: 10_000}}, &constIssuer{latency: 1}, 100_000)
	for n := Cycles(0); !ref.Done(); n++ {
		ref.Tick(n)
	}
	if c.FinishCycle() != ref.FinishCycle() || c.Retired() != ref.Retired() {
		t.Errorf("batched run diverged: finish %d vs %d, retired %d vs %d",
			c.FinishCycle(), ref.FinishCycle(), c.Retired(), ref.Retired())
	}
	if ticks*4 > c.FinishCycle() {
		t.Errorf("compute stretch barely batched: %d ticks for %d cycles", ticks, c.FinishCycle())
	}
}

func TestBudgetAndFinishCycle(t *testing.T) {
	cfg := config.DefaultCore()
	st := &fixedStream{rec: trace.Record{Gap: 50}}
	c := NewCore(0, cfg, st, &constIssuer{latency: 20}, 10_000)
	run(c)
	if !c.Done() {
		t.Fatal("core not done")
	}
	if c.Retired() < 10_000 {
		t.Errorf("Retired = %d, want >= 10000", c.Retired())
	}
	if c.FinishCycle() <= 0 {
		t.Error("FinishCycle not recorded")
	}
	if c.MemOps == 0 {
		t.Error("no memory ops counted")
	}
	// Rate mode: a finished core can keep ticking without error.
	fc := c.FinishCycle()
	for now := fc + 1; now < fc+100; now++ {
		c.Tick(now)
	}
	if c.FinishCycle() != fc {
		t.Error("FinishCycle changed after completion")
	}
}
