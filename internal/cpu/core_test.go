package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// fixedStream yields a repeating record.
type fixedStream struct {
	rec trace.Record
}

func (s *fixedStream) Next() trace.Record { return s.rec }
func (s *fixedStream) Name() string       { return "fixed" }

// constIssuer completes every memory op after a fixed latency.
type constIssuer struct {
	latency Cycles
	issued  int64
}

func (i *constIssuer) Issue(_ int, _ trace.Record, now Cycles) Cycles {
	i.issued++
	return now + i.latency
}

func run(c *Core) Cycles {
	var now Cycles
	for !c.Done() {
		c.Tick(now)
		now++
		if now > 100_000_000 {
			panic("core never finished")
		}
	}
	return now
}

func TestPureComputeIPCEqualsWidth(t *testing.T) {
	// A stream of non-memory instructions with a zero-latency memory op
	// every 1000 instructions retires at ~RetireWidth IPC.
	cfg := config.DefaultCore()
	st := &fixedStream{rec: trace.Record{Gap: 1000}}
	c := NewCore(0, cfg, st, &constIssuer{latency: 1}, 100_000)
	run(c)
	ipc := c.IPC()
	if ipc < 3.5 || ipc > 4.05 {
		t.Errorf("compute-bound IPC = %.2f, want ~4", ipc)
	}
}

func TestMemoryBoundIPCDropsWithLatency(t *testing.T) {
	cfg := config.DefaultCore()
	// Every other instruction is a memory op.
	mk := func(lat Cycles) float64 {
		st := &fixedStream{rec: trace.Record{Gap: 1}}
		c := NewCore(0, cfg, st, &constIssuer{latency: lat}, 50_000)
		run(c)
		return c.IPC()
	}
	fast, slow := mk(10), mk(400)
	if fast <= slow {
		t.Errorf("IPC should drop with latency: fast=%.3f slow=%.3f", fast, slow)
	}
	if slow > 1.0 {
		t.Errorf("400-cycle-latency every-other-instruction IPC = %.3f, expected memory bound (<1)", slow)
	}
}

func TestROBLimitsOutstandingMisses(t *testing.T) {
	// With a ROB of 192 and all-memory instructions of huge latency,
	// at most ROBSize requests can be outstanding before the core stalls.
	cfg := config.DefaultCore()
	iss := &constIssuer{latency: 1_000_000}
	st := &fixedStream{rec: trace.Record{Gap: 0}}
	c := NewCore(0, cfg, st, iss, 1000)
	for now := Cycles(0); now < 1000; now++ {
		c.Tick(now)
	}
	if iss.issued > int64(cfg.ROBSize) {
		t.Errorf("issued %d memory ops with ROB of %d", iss.issued, cfg.ROBSize)
	}
	if iss.issued < int64(cfg.ROBSize) {
		t.Errorf("issued only %d, want ROB filled (%d)", iss.issued, cfg.ROBSize)
	}
}

func TestMemLevelParallelismOverlapsLatency(t *testing.T) {
	// 100-cycle latency with abundant independent misses should overlap:
	// throughput must far exceed the serial 1-per-100-cycles bound.
	cfg := config.DefaultCore()
	st := &fixedStream{rec: trace.Record{Gap: 10}}
	c := NewCore(0, cfg, st, &constIssuer{latency: 100}, 100_000)
	cycles := run(c)
	serialCycles := Cycles(100_000 / 11 * 100) // one miss per 11 instrs, serialized
	if cycles > serialCycles/2 {
		t.Errorf("took %d cycles; MLP should beat half the serial bound %d", cycles, serialCycles)
	}
}

func TestNextWorkMatchesTickActivity(t *testing.T) {
	// Fill the ROB with huge-latency memory ops; NextWork must then point
	// at the head's completion, and every Tick before it must be a no-op.
	cfg := config.DefaultCore()
	iss := &constIssuer{latency: 5_000}
	st := &fixedStream{rec: trace.Record{Gap: 0}}
	c := NewCore(0, cfg, st, iss, 1000)
	var now Cycles
	for c.NextWork(now) == now+1 {
		c.Tick(now)
		now++
		if now > 10_000 {
			t.Fatal("ROB never filled")
		}
	}
	stall := c.NextWork(now)
	if stall <= now+1 {
		t.Fatalf("stalled core NextWork = %d at now %d", stall, now)
	}
	retired, issued := c.Retired(), iss.issued
	for t2 := now; t2 < stall; t2++ {
		c.Tick(t2)
	}
	if c.Retired() != retired || iss.issued != issued {
		t.Errorf("ticks before NextWork deadline changed state: retired %d->%d issued %d->%d",
			retired, c.Retired(), issued, iss.issued)
	}
	c.Tick(stall)
	if c.Retired() == retired {
		t.Error("tick at NextWork deadline made no progress")
	}
}

func TestBudgetAndFinishCycle(t *testing.T) {
	cfg := config.DefaultCore()
	st := &fixedStream{rec: trace.Record{Gap: 50}}
	c := NewCore(0, cfg, st, &constIssuer{latency: 20}, 10_000)
	run(c)
	if !c.Done() {
		t.Fatal("core not done")
	}
	if c.Retired() < 10_000 {
		t.Errorf("Retired = %d, want >= 10000", c.Retired())
	}
	if c.FinishCycle() <= 0 {
		t.Error("FinishCycle not recorded")
	}
	if c.MemOps == 0 {
		t.Error("no memory ops counted")
	}
	// Rate mode: a finished core can keep ticking without error.
	fc := c.FinishCycle()
	for now := fc + 1; now < fc+100; now++ {
		c.Tick(now)
	}
	if c.FinishCycle() != fc {
		t.Error("FinishCycle changed after completion")
	}
}
