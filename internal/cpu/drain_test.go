package cpu

import (
	"testing"

	"repro/internal/config"
)

// This file is the differential fixture for the post-release drain
// regime: a blocked ROB head releases and retirement streams through
// completed entries at full RetireWidth while fetch refills the freed
// space with the remaining gap run. Before this regime had a closed
// form, the event kernel fell back to advancing such stretches one
// cycle at a time — the last per-cycle regime. These tests are the
// safety net the batching landed against: they compare the event-ticked
// core against the per-cycle oracle on workloads dominated by drains,
// require that drainCycles actually advertises batched deadlines, and
// pin one small scenario down to literal cycle numbers.

// drainRegimeCycles counts, on a per-cycle-ticked core, the cycles in
// which the core sat in the post-release drain regime proper: the head
// entry is retireable, at least a full retire width is resident, and a
// full-width run of gap instructions is still waiting behind a pending
// memory operation. It returns the count alongside the finish cycle.
func drainRegimeCycles(c *Core, limit Cycles) (Cycles, Cycles) {
	w := c.cfg.FetchWidth
	var draining Cycles
	var now Cycles
	for !c.Done() {
		if c.robCount > 0 && c.rob[c.head].done <= now &&
			c.robInstr >= w && c.havePend && c.gapLeft >= w {
			draining++
		}
		c.Tick(now)
		now++
		if now > limit {
			panic("cycle oracle never finished")
		}
	}
	return draining, now
}

// TestDrainAfterReleaseMatchesCycleOracle drives the core through
// alternating long memory stalls and gap bursts larger than the ROB,
// so every stall ends with a long drain: the released head streams out
// at full width while the leftover gap refills behind it. The
// event-ticked run must issue every memory operation at exactly the
// same cycle as the per-cycle oracle and finish in identical state,
// and whenever the core sits in the drain regime, NextWork must
// advertise the full closed-form jump. The (gap, latency, budget) grid
// covers drains ended by the memory issue, by a still-in-flight entry
// reaching the head, and by the budget crossing mid-drain.
func TestDrainAfterReleaseMatchesCycleOracle(t *testing.T) {
	cfg := config.DefaultCore()
	cases := []struct {
		name    string
		gap     int
		latency Cycles
		budget  int64
	}{
		{"long-drain-after-release", 500, 1_500, 20_000},
		{"gap-far-exceeds-rob", 2_000, 1_000, 40_000},
		{"short-stall-short-drain", 250, 80, 20_000},
		{"interleaved-memops", 60, 700, 20_000},
		{"budget-crosses-mid-drain", 500, 1_500, 1_200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cycIss := &logIssuer{lats: []Cycles{tc.latency}}
			cyc := NewCore(0, cfg, &fillStream{gap: tc.gap}, cycIss, tc.budget)
			draining, _ := drainRegimeCycles(cyc, 50_000_000)
			if draining == 0 {
				t.Fatalf("fixture never entered the post-release drain regime")
			}

			evtIss := &logIssuer{lats: []Cycles{tc.latency}}
			evt := NewCore(0, cfg, &fillStream{gap: tc.gap}, evtIss, tc.budget)
			var now Cycles
			var drainJumps int64
			for !evt.Done() {
				evt.Tick(now)
				next := evt.NextWork(now)
				if next <= now {
					t.Fatalf("NextWork(%d) = %d went backwards", now, next)
				}
				// Whenever the core sits in the drain regime, NextWork
				// must advertise the full closed-form jump — a now+1
				// answer here means the batching silently disengaged.
				if k := evt.drainCycles(now); k > 0 {
					if next != now+k+1 {
						t.Fatalf("drain regime at cycle %d: NextWork = %d, want %d (k=%d)", now, next, now+k+1, k)
					}
					drainJumps++
				}
				now = next
				if now > 50_000_000 {
					t.Fatal("event-ticked core never finished")
				}
			}
			if drainJumps == 0 {
				t.Error("event-ticked run never batched a drain stretch")
			}
			if evt.Regimes().DrainCycles == 0 {
				t.Error("no skipped cycles were replayed by advanceDrain")
			}

			if len(cycIss.log) != len(evtIss.log) {
				t.Fatalf("issue counts differ: cycle %d, event %d", len(cycIss.log), len(evtIss.log))
			}
			for i := range cycIss.log {
				if cycIss.log[i] != evtIss.log[i] {
					t.Fatalf("issue %d differs: cycle %+v, event %+v", i, cycIss.log[i], evtIss.log[i])
				}
			}
			if cyc.Retired() != evt.Retired() || cyc.FinishCycle() != evt.FinishCycle() ||
				cyc.MemOps != evt.MemOps {
				t.Errorf("final state differs:\ncycle: retired=%d finish=%d memops=%d\nevent: retired=%d finish=%d memops=%d",
					cyc.Retired(), cyc.FinishCycle(), cyc.MemOps,
					evt.Retired(), evt.FinishCycle(), evt.MemOps)
			}
		})
	}
}

// TestDrainRegimeScheduleIsPinned freezes the cycle-exact schedule of
// one small drain scenario as literal numbers. ROB 8, width 2: each
// record carries a 40-instruction gap burst, so after the 100-cycle
// memory op at the head releases, the core drains the full ROB at
// 2/cycle while the leftover ~25 gap instructions refill behind it —
// a pure drain stretch the closed form must replay cycle-exactly.
func TestDrainRegimeScheduleIsPinned(t *testing.T) {
	cfg := config.Core{Cores: 1, ClockGHz: 3.2, ROBSize: 8, FetchWidth: 2, RetireWidth: 2}
	iss := &logIssuer{lats: []Cycles{100}}
	c := NewCore(0, cfg, &fillStream{gap: 40}, iss, 120)
	var now Cycles
	for !c.Done() {
		c.Tick(now)
		now = c.NextWork(now)
		if now > 10_000 {
			t.Fatal("never finished")
		}
	}
	// Issue cycles of the first three memory ops, recorded from the
	// per-cycle oracle when this fixture was written: the leading
	// 40-instruction gap burst fetches at 2/cycle (20 cycles), so the
	// first memory op issues at cycle 20; each later one waits out its
	// predecessor's 100-cycle latency, then the drain of the full ROB
	// overlapped with the refill of the next 40-instruction burst
	// (116 cycles apart).
	want := []Cycles{20, 136, 252}
	if len(iss.log) < len(want) {
		t.Fatalf("only %d issues recorded", len(iss.log))
	}
	for i, w := range want {
		if iss.log[i].cycle != w {
			t.Errorf("memory op %d issued at cycle %d, want %d", i, iss.log[i].cycle, w)
		}
	}
	if c.FinishCycle() != 255 {
		t.Errorf("budget of 120 reached at cycle %d, want 255", c.FinishCycle())
	}
	if c.Regimes().DrainCycles == 0 {
		t.Error("pinned scenario never exercised advanceDrain")
	}
}

// TestGridRegimesNeverStepPerCycle is the benchmark-mode guard the
// drain closed form completes: on every oracle-grid workload (the fill
// grid and the drain grid), an event-ticked core must replay each
// skipped stretch with one of the closed forms — the per-cycle
// fallback loop in replay must never run — and must tick far fewer
// times than the cycles it simulates. A regression that disqualifies
// any regime (so NextWork degrades to now+1 crawling, or replay falls
// back to stepping) fails here before it shows up as a throughput
// loss in BENCH_kernel.json.
func TestGridRegimesNeverStepPerCycle(t *testing.T) {
	cfg := config.DefaultCore()
	cases := []struct {
		name    string
		gap     int
		latency Cycles
		budget  int64
	}{
		// Fill-grid workloads (fill_test.go).
		{"head-unblocks-after-fill", 170, 2_000, 20_000},
		{"head-unblocks-mid-fill", 170, 30, 20_000},
		{"gap-overflows-rob", 500, 1_500, 20_000},
		{"many-memops-in-rob", 40, 3_000, 20_000},
		{"budget-crosses-mid-fill", 170, 2_000, 1_000},
		// Drain-grid workloads (this file).
		{"long-drain-after-release", 500, 1_500, 20_000},
		{"gap-far-exceeds-rob", 2_000, 1_000, 40_000},
		{"short-stall-short-drain", 250, 80, 20_000},
		{"interleaved-memops", 60, 700, 20_000},
		{"budget-crosses-mid-drain", 500, 1_500, 1_200},
	}
	var total RegimeStats
	var cycles Cycles
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			iss := &logIssuer{lats: []Cycles{tc.latency}}
			c := NewCore(0, cfg, &fillStream{gap: tc.gap}, iss, tc.budget)
			var now Cycles
			for !c.Done() {
				c.Tick(now)
				now = c.NextWork(now)
				if now > 50_000_000 {
					t.Fatal("never finished")
				}
			}
			r := c.Regimes()
			if r.SteppedCycles != 0 {
				t.Errorf("replay fell back to per-cycle stepping for %d cycles", r.SteppedCycles)
			}
			if r.Ticks >= c.FinishCycle() {
				t.Errorf("event ticking did not skip any cycles: %d ticks over %d cycles", r.Ticks, c.FinishCycle())
			}
			total.Add(r)
			cycles += c.FinishCycle()
		})
	}
	// Across the grid, every closed form must have replayed something —
	// a regime whose qualifier went dead would silently shift its cycles
	// into slower regimes (or stepping) without any single case failing.
	if total.FillCycles == 0 {
		t.Error("no grid workload engaged advanceFill")
	}
	if total.DrainCycles == 0 {
		t.Error("no grid workload engaged advanceDrain")
	}
	if total.StallCycles == 0 {
		t.Error("no grid workload skipped a ROB-full stall")
	}
	if total.Ticks*4 > int64(cycles) {
		t.Errorf("grid barely batched: %d ticks for %d simulated cycles", total.Ticks, cycles)
	}
}
