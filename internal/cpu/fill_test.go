package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// This file is the differential fixture for the fill-toward-full ROB
// regime: the head entry is a long-latency memory operation blocking
// in-order retirement while gap instructions keep streaming into the
// remaining ROB space, cycle after cycle, until fetch hits the
// capacity wall. The core batches this regime in closed form like the
// steady-compute stretch (fillCycles/advanceFill): NextWork advertises
// the cycle of the next observable event — memory issue, capacity
// wall, or head release — and the skipped pure-fill cycles are
// replayed as one ROB push each. These tests are the safety net the
// batching landed against: they compare the event-ticked core against
// the per-cycle oracle on exactly this regime, require that the fill
// regime actually advertises batched deadlines, and pin down the
// observable schedule, so any NextWork/replay change that miscounts a
// fill cycle fails here instead of skewing figure sweeps.

// fillStream alternates one long-latency memory op with a burst of gap
// instructions sized near the ROB capacity, maximizing the cycles spent
// filling behind a blocked head.
type fillStream struct {
	gap int
	i   int
}

func (s *fillStream) Next() trace.Record {
	s.i++
	return trace.Record{Gap: s.gap, Addr: uint64(s.i) * 64}
}
func (s *fillStream) Name() string { return "fill" }

// fillRegimeCycles counts, on a per-cycle-ticked core, the cycles in
// which fetch could still progress while the ROB head was blocked on an
// incomplete entry — the fill-toward-full regime proper — until the
// core finishes. It returns the count alongside the finished core.
func fillRegimeCycles(c *Core, limit Cycles) (Cycles, Cycles) {
	var filling Cycles
	var now Cycles
	for !c.Done() {
		if c.robCount > 0 && c.rob[c.head].done > now && !c.robFull() {
			filling++
		}
		c.Tick(now)
		now++
		if now > limit {
			panic("cycle oracle never finished")
		}
	}
	return filling, now
}

// TestFillTowardFullMatchesCycleOracle drives the core through
// alternating long memory stalls and near-ROB-sized gap bursts, with
// the event-ticked run following NextWork deadlines. Every memory
// operation must issue at exactly the same cycle as in the per-cycle
// oracle, and the final retire/finish state must be identical. The
// (gap, latency) grid covers heads that unblock before, at, and long
// after the fill completes, plus a budget that crosses mid-fill.
func TestFillTowardFullMatchesCycleOracle(t *testing.T) {
	cfg := config.DefaultCore()
	cases := []struct {
		name    string
		gap     int
		latency Cycles
		budget  int64
	}{
		{"head-unblocks-after-fill", 170, 2_000, 20_000},
		{"head-unblocks-mid-fill", 170, 30, 20_000},
		{"gap-overflows-rob", 500, 1_500, 20_000},
		{"many-memops-in-rob", 40, 3_000, 20_000},
		{"budget-crosses-mid-fill", 170, 2_000, 1_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cycIss := &logIssuer{lats: []Cycles{tc.latency}}
			cyc := NewCore(0, cfg, &fillStream{gap: tc.gap}, cycIss, tc.budget)
			filling, _ := fillRegimeCycles(cyc, 50_000_000)
			if filling == 0 {
				t.Fatalf("fixture never entered the fill-toward-full regime")
			}

			evtIss := &logIssuer{lats: []Cycles{tc.latency}}
			evt := NewCore(0, cfg, &fillStream{gap: tc.gap}, evtIss, tc.budget)
			var now Cycles
			var ticks, fillJumps int64
			for !evt.Done() {
				evt.Tick(now)
				ticks++
				next := evt.NextWork(now)
				if next <= now {
					t.Fatalf("NextWork(%d) = %d went backwards", now, next)
				}
				// Whenever the core sits in the fill regime, NextWork
				// must advertise the full closed-form jump — a now+1
				// answer here means the batching silently disengaged.
				if k := evt.fillCycles(now); k > 0 {
					if next != now+k+1 {
						t.Fatalf("fill regime at cycle %d: NextWork = %d, want %d (k=%d)", now, next, now+k+1, k)
					}
					fillJumps++
				}
				now = next
				if now > 50_000_000 {
					t.Fatal("event-ticked core never finished")
				}
			}
			if fillJumps == 0 {
				t.Error("event-ticked run never batched a fill stretch")
			}

			if len(cycIss.log) != len(evtIss.log) {
				t.Fatalf("issue counts differ: cycle %d, event %d", len(cycIss.log), len(evtIss.log))
			}
			for i := range cycIss.log {
				if cycIss.log[i] != evtIss.log[i] {
					t.Fatalf("issue %d differs: cycle %+v, event %+v", i, cycIss.log[i], evtIss.log[i])
				}
			}
			if cyc.Retired() != evt.Retired() || cyc.FinishCycle() != evt.FinishCycle() ||
				cyc.MemOps != evt.MemOps {
				t.Errorf("final state differs:\ncycle: retired=%d finish=%d memops=%d\nevent: retired=%d finish=%d memops=%d",
					cyc.Retired(), cyc.FinishCycle(), cyc.MemOps,
					evt.Retired(), evt.FinishCycle(), evt.MemOps)
			}
		})
	}
}

// TestFillRegimeScheduleIsPinned freezes the cycle-exact schedule of
// one small fill scenario as literal numbers, so a future closed-form
// batching of the fill regime is checked not only against the oracle
// implementation but against today's recorded behaviour. ROB 8, width
// 2: a 100-cycle memory op at the head, then a 20-instruction gap
// burst fills the remaining 7 slots at 2/cycle while the head blocks.
func TestFillRegimeScheduleIsPinned(t *testing.T) {
	cfg := config.Core{Cores: 1, ClockGHz: 3.2, ROBSize: 8, FetchWidth: 2, RetireWidth: 2}
	iss := &logIssuer{lats: []Cycles{100}}
	c := NewCore(0, cfg, &fillStream{gap: 20}, iss, 60)
	var now Cycles
	for !c.Done() {
		c.Tick(now)
		now = c.NextWork(now)
		if now > 10_000 {
			t.Fatal("never finished")
		}
	}
	// Issue cycles of the first three memory ops, recorded from the
	// per-cycle oracle when this fixture was written: the leading
	// 20-instruction gap burst fetches at 2/cycle (10 cycles), so the
	// first memory op issues at cycle 10; each later one waits out its
	// predecessor's 100-cycle latency plus the drain/refill of the next
	// gap burst through the 8-entry ROB (106 cycles apart).
	want := []Cycles{10, 116, 222}
	if len(iss.log) < len(want) {
		t.Fatalf("only %d issues recorded", len(iss.log))
	}
	for i, w := range want {
		if iss.log[i].cycle != w {
			t.Errorf("memory op %d issued at cycle %d, want %d", i, iss.log[i].cycle, w)
		}
	}
	if c.FinishCycle() != 225 {
		t.Errorf("budget of 60 reached at cycle %d, want 225", c.FinishCycle())
	}
}
