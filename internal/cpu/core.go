// Package cpu implements the trace-driven out-of-order core model of
// Table III: a 192-entry reorder buffer, 4-wide fetch and retire, with
// memory operations occupying ROB entries until their data returns.
// This is the USIMM processor model: non-memory instructions retire at
// full width; long-latency memory operations stall retirement when they
// reach the ROB head, so IPC degrades exactly with memory latency.
package cpu

import (
	"repro/internal/config"
	"repro/internal/trace"
)

// Cycles matches dram.Cycles (avoided import to keep cpu free-standing).
type Cycles = int64

// Issuer is the memory-system entry point the core calls for each memory
// operation. It returns the cycle at which the operation's data is ready
// (reads) or the operation is accepted (writes, typically immediately).
type Issuer interface {
	Issue(coreID int, rec trace.Record, now Cycles) Cycles
}

// robEntry is a group of instructions that complete at the same cycle.
// Non-memory runs are coalesced into weighted entries so the simulator
// does not pay per-instruction cost.
type robEntry struct {
	count int    // instructions represented
	done  Cycles // cycle at which they may retire
}

// Core is one simulated core consuming a trace stream.
type Core struct {
	id     int
	cfg    config.Core
	stream trace.Stream
	issue  Issuer

	rob      []robEntry
	head     int
	tail     int
	robCount int // entries in ring
	robInstr int // instructions occupying the ROB

	gapLeft  int          // non-memory instructions awaiting fetch
	pending  trace.Record // memory op awaiting fetch
	havePend bool

	retired     int64
	budget      int64
	finishCycle Cycles
	done        bool

	// Stats
	MemOps int64
}

// NewCore returns a core with the given instruction budget.
func NewCore(id int, cfg config.Core, stream trace.Stream, issue Issuer, budget int64) *Core {
	return &Core{
		id:     id,
		cfg:    cfg,
		stream: stream,
		issue:  issue,
		rob:    make([]robEntry, cfg.ROBSize+1),
		budget: budget,
	}
}

// Done reports whether the core has retired its instruction budget.
func (c *Core) Done() bool { return c.done }

// Retired returns the number of retired instructions.
func (c *Core) Retired() int64 { return c.retired }

// FinishCycle returns the cycle at which the budget was reached (valid
// once Done). Cores keep running after finishing (rate mode), but IPC is
// measured at the budget point.
func (c *Core) FinishCycle() Cycles { return c.finishCycle }

// IPC returns retired-instructions-per-cycle measured at the budget point.
func (c *Core) IPC() float64 {
	if c.finishCycle == 0 {
		return 0
	}
	return float64(c.budget) / float64(c.finishCycle)
}

func (c *Core) push(e robEntry) {
	c.rob[c.tail] = e
	c.tail = (c.tail + 1) % len(c.rob)
	c.robCount++
	c.robInstr += e.count
}

// Tick advances the core by one cycle: retire from the ROB head, then
// fetch new instructions (issuing memory operations to the memory
// system).
func (c *Core) Tick(now Cycles) {
	c.retire(now)
	c.fetch(now)
}

// NextWork returns the next cycle at which Tick would change state, for
// the event-driven kernel. While the ROB has room the core fetches every
// cycle; once it fills, nothing can happen until the head entry's
// completion cycle unblocks in-order retirement, so every Tick in
// between is a no-op and the kernel may jump straight to that deadline.
func (c *Core) NextWork(now Cycles) Cycles {
	if c.robInstr < c.cfg.ROBSize && c.robCount < len(c.rob)-1 {
		return now + 1
	}
	if head := c.rob[c.head].done; head > now+1 {
		return head
	}
	return now + 1
}

func (c *Core) retire(now Cycles) {
	width := c.cfg.RetireWidth
	for width > 0 && c.robCount > 0 {
		e := &c.rob[c.head]
		if e.done > now {
			return // head not complete: in-order retirement stalls
		}
		n := e.count
		if n > width {
			n = width
		}
		e.count -= n
		width -= n
		c.robInstr -= n
		c.retired += int64(n)
		if e.count == 0 {
			c.head = (c.head + 1) % len(c.rob)
			c.robCount--
		}
		if !c.done && c.retired >= c.budget {
			c.done = true
			c.finishCycle = now
		}
	}
}

func (c *Core) fetch(now Cycles) {
	width := c.cfg.FetchWidth
	for width > 0 && c.robInstr < c.cfg.ROBSize && c.robCount < len(c.rob)-1 {
		if c.gapLeft == 0 && !c.havePend {
			rec := c.stream.Next()
			c.gapLeft = rec.Gap
			c.pending = rec
			c.havePend = true
		}
		if c.gapLeft > 0 {
			n := c.gapLeft
			if n > width {
				n = width
			}
			if room := c.cfg.ROBSize - c.robInstr; n > room {
				n = room
			}
			// Non-memory instructions complete next cycle.
			c.push(robEntry{count: n, done: now + 1})
			c.gapLeft -= n
			width -= n
			continue
		}
		// Memory operation: issue to the memory system now; it occupies
		// one ROB slot until its completion cycle.
		done := c.issue.Issue(c.id, c.pending, now)
		if done <= now {
			done = now + 1
		}
		c.push(robEntry{count: 1, done: done})
		c.MemOps++
		c.havePend = false
		width--
	}
}
