// Package cpu implements the trace-driven out-of-order core model of
// Table III: a 192-entry reorder buffer, 4-wide fetch and retire, with
// memory operations occupying ROB entries until their data returns.
// This is the USIMM processor model: non-memory instructions retire at
// full width; long-latency memory operations stall retirement when they
// reach the ROB head, so IPC degrades exactly with memory latency.
package cpu

import (
	"repro/internal/config"
	"repro/internal/trace"
)

// Cycles matches dram.Cycles (avoided import to keep cpu free-standing).
type Cycles = int64

// Issuer is the memory-system entry point the core calls for each memory
// operation. It returns the cycle at which the operation's data is ready
// (reads) or the operation is accepted (writes, typically immediately).
type Issuer interface {
	Issue(coreID int, rec trace.Record, now Cycles) Cycles
}

// robEntry is a group of instructions in the reorder buffer. A plain
// entry (rate == 0) is a run that completes at a single cycle —
// non-memory runs are coalesced into weighted entries so the simulator
// does not pay per-instruction cost. A ramp entry (rate > 0) compresses
// a whole staircase of such runs: blocks of rate instructions completing
// at done, done+1, done+2, … (the front block may be partial after
// partial retirement). Ramps are only created by the closed-form
// fill/drain replays, which would otherwise push one ring entry per
// skipped cycle; every consumer treats a ramp exactly as the sequence of
// per-cycle entries it stands for, so the representation is invisible to
// simulated timing.
type robEntry struct {
	count int    // instructions represented
	done  Cycles // completion cycle (plain) / of the front block (ramp)
	rate  int    // 0: plain; >0: block width of the per-cycle staircase
	front int    // ramp only: instructions left in the front block
}

// blocks returns the number of virtual per-cycle entries e stands for.
// Every block behind the front one is exactly rate wide, so the division
// is exact; hot paths avoid even that (see retire).
func (e *robEntry) blocks() int {
	if e.rate == 0 {
		return 1
	}
	return 1 + (e.count-e.front)/e.rate
}

// rampAvail returns how many of a ramp's instructions have completed by
// cycle now (callers ensure e.done <= now): the front block plus every
// full block whose staircase cycle has passed.
func (e *robEntry) rampAvail(now Cycles) int {
	a := int64(e.front) + int64(e.rate)*(now-e.done)
	if a >= int64(e.count) {
		return e.count
	}
	return int(a)
}

// coreSlabRecords is the record slab size: one NextBatch refill per 256
// accesses replaces 256 interface dispatches (and, for synthetic
// streams, 256 per-record sampling calls) on the fetch path.
const coreSlabRecords = 256

// Core is one simulated core consuming a trace stream.
type Core struct {
	id    int
	cfg   config.Core
	batch trace.BatchStream
	issue Issuer

	// slab is the reusable record buffer fetch consumes by index;
	// slabPos/slabLen delimit the unconsumed records of the last refill.
	slab    []trace.Record
	slabPos int
	slabLen int

	rob      []robEntry
	head     int
	tail     int
	robCount int // virtual entries (a ramp counts once per block)
	robSlots int // physical ring slots occupied (<= robCount)
	robInstr int // instructions occupying the ROB

	gapLeft  int          // non-memory instructions awaiting fetch
	pending  trace.Record // memory op awaiting fetch
	havePend bool

	// fill/drain regime-length memoization: NextWork(now) computes
	// fillCycles/drainCycles for the core's current state, and the very
	// next Tick's replay asks the same question at the same reference
	// cycle with the state untouched in between. The memo keys on the
	// reference cycle and is dropped at the end of every Tick (the only
	// place core state mutates), so it is correctness-neutral.
	fillRef  Cycles
	fillVal  Cycles
	fillOK   bool
	drainRef Cycles
	drainVal Cycles
	drainOK  bool

	lastTick Cycles // cycle of the previous Tick (-1 before the first)

	retired     int64
	budget      int64
	finishCycle Cycles
	done        bool

	// Stats
	MemOps  int64
	regimes RegimeStats
}

// RegimeStats instruments the event-kernel batching: how many skipped
// cycles each closed-form regime replayed, how many were replayed by
// the per-cycle fallback loop (zero under the NextWork contract — the
// grid tests assert it), and how many Tick invocations the core saw.
// Purely host-side instrumentation: a cycle-stepped run reports only
// Ticks, so determinism checks must ignore these counters.
type RegimeStats struct {
	ComputeCycles int64 // replayed by advanceComputeStretch
	FillCycles    int64 // replayed by advanceFill
	DrainCycles   int64 // replayed by advanceDrain
	StallCycles   int64 // skipped as no-ops behind a blocked full-ROB head
	SteppedCycles int64 // replayed one cycle at a time (fallback)
	Ticks         int64 // Tick invocations
}

// Add accumulates o into s (used to sum per-core stats into a run total).
func (s *RegimeStats) Add(o RegimeStats) {
	s.ComputeCycles += o.ComputeCycles
	s.FillCycles += o.FillCycles
	s.DrainCycles += o.DrainCycles
	s.StallCycles += o.StallCycles
	s.SteppedCycles += o.SteppedCycles
	s.Ticks += o.Ticks
}

// BatchedCycles returns the cycles replayed or skipped in closed form.
func (s RegimeStats) BatchedCycles() int64 {
	return s.ComputeCycles + s.FillCycles + s.DrainCycles + s.StallCycles
}

// Regimes returns the core's batching instrumentation.
func (c *Core) Regimes() RegimeStats { return c.regimes }

// NewCore returns a core with the given instruction budget. Streams
// that implement trace.BatchStream are consumed through slab refills;
// any other Stream is adapted per-record via trace.Batched.
func NewCore(id int, cfg config.Core, stream trace.Stream, issue Issuer, budget int64) *Core {
	return &Core{
		id:       id,
		cfg:      cfg,
		batch:    trace.Batched(stream),
		slab:     make([]trace.Record, coreSlabRecords),
		issue:    issue,
		rob:      make([]robEntry, cfg.ROBSize+1),
		budget:   budget,
		lastTick: -1,
	}
}

// loadRecord copies the next trace record from the slab straight into
// c.pending (one Record copy per access, not two), refilling the slab
// when it runs dry. A BatchStream may legitimately return short batches
// (e.g. at memoized-chunk boundaries) but never zero for a non-empty
// slab.
func (c *Core) loadRecord() {
	if c.slabPos >= c.slabLen {
		n := c.batch.NextBatch(c.slab)
		if n <= 0 {
			panic("cpu: BatchStream.NextBatch returned no records for a non-empty slab")
		}
		c.slabPos, c.slabLen = 0, n
	}
	c.pending = c.slab[c.slabPos]
	c.slabPos++
	c.gapLeft = c.pending.Gap
	c.havePend = true
}

// Done reports whether the core has retired its instruction budget.
func (c *Core) Done() bool { return c.done }

// Retired returns the number of retired instructions.
func (c *Core) Retired() int64 { return c.retired }

// FinishCycle returns the cycle at which the budget was reached (valid
// once Done). Cores keep running after finishing (rate mode), but IPC is
// measured at the budget point.
func (c *Core) FinishCycle() Cycles { return c.finishCycle }

// IPC returns retired-instructions-per-cycle measured at the budget point.
func (c *Core) IPC() float64 {
	if c.finishCycle == 0 {
		return 0
	}
	return float64(c.budget) / float64(c.finishCycle)
}

func (c *Core) push(e robEntry) {
	c.rob[c.tail] = e
	if c.tail++; c.tail == len(c.rob) {
		c.tail = 0
	}
	c.robCount++
	c.robSlots++
	c.robInstr += e.count
}

// pushRamp appends a ramp of count instructions in blocks of rate
// completing at done, done+1, …. robCount grows by the virtual entry
// count, so every capacity and regime-length formula sees exactly the
// occupancy the equivalent per-cycle pushes would have produced (which
// also guarantees the ring itself can never overflow: physical slots
// used are always <= robCount, and robCount is capped by the same
// formulas as before).
func (c *Core) pushRamp(count int, done Cycles, rate int) {
	c.rob[c.tail] = robEntry{count: count, done: done, rate: rate, front: rate}
	if c.tail++; c.tail == len(c.rob) {
		c.tail = 0
	}
	c.robCount += count / rate // always a whole number of blocks at creation
	c.robSlots++
	c.robInstr += count
}

// Tick advances the core to cycle now. If cycles were skipped since the
// previous Tick (the event-driven kernel jumps straight between NextWork
// deadlines), their effect is replayed first — NextWork only ever
// advertises a deadline beyond now+1 when every skipped cycle is
// provably core-local, so the replay is exact. Then the core retires
// from the ROB head and fetches new instructions (issuing memory
// operations to the memory system) for cycle now itself.
//
// Regime map — every closed-form regime, its invariant, and the test
// that pins it:
//
//	ROB-full stall      skipped cycles are no-ops (head incomplete,
//	                    fetch blocked)            — TestEventTickedCoreMatchesCycleTicked
//	compute stretch     advanceComputeStretch     — TestComputeStretchIsBatched
//	fill toward full    advanceFill               — TestFillTowardFullMatchesCycleOracle, TestFillRegimeScheduleIsPinned
//	post-release drain  advanceDrain              — TestDrainAfterReleaseMatchesCycleOracle, TestDrainRegimeScheduleIsPinned
//
// TestGridRegimesNeverStepPerCycle asserts the fallback loop below the
// closed forms never runs on the oracle-grid workloads.
func (c *Core) Tick(now Cycles) {
	if now > c.lastTick+1 {
		c.replay(c.lastTick+1, now)
	}
	c.lastTick = now
	c.regimes.Ticks++
	c.retire(now)
	c.fetch(now)
	c.fillOK, c.drainOK = false, false
}

// fillCyclesAt and drainCyclesAt are the memoizing entry points for the
// regime-length computations (see the memo fields on Core).
func (c *Core) fillCyclesAt(ref Cycles) Cycles {
	if c.fillOK && c.fillRef == ref {
		return c.fillVal
	}
	v := c.fillCycles(ref)
	c.fillRef, c.fillVal, c.fillOK = ref, v, true
	return v
}

func (c *Core) drainCyclesAt(ref Cycles) Cycles {
	if c.drainOK && c.drainRef == ref {
		return c.drainVal
	}
	v := c.drainCycles(ref)
	c.drainRef, c.drainVal, c.drainOK = ref, v, true
	return v
}

// robFull reports whether fetch is blocked on ROB capacity (either
// instruction occupancy or ring slots).
func (c *Core) robFull() bool {
	return c.robInstr >= c.cfg.ROBSize || c.robCount >= len(c.rob)-1
}

// steadyCompute reports whether the core — in its state after ticking at
// cycle ref — is in a steady compute stretch: a long run of non-memory
// instructions is pending, everything resident in the ROB retires on the
// next tick, and retirement keeps pace with fetch. In this regime every
// subsequent tick retires exactly what the previous tick fetched and
// fetches FetchWidth more gap instructions, so the stretch's evolution
// is a closed-form function of its length (see advanceComputeStretch)
// and the next memory issue or budget crossing can be predicted.
func (c *Core) steadyCompute(ref Cycles) bool {
	w := c.cfg.FetchWidth
	if w > c.cfg.RetireWidth || c.cfg.ROBSize < 2*w {
		return false
	}
	if !c.havePend || c.gapLeft < 2*w || c.robInstr > c.cfg.RetireWidth {
		return false
	}
	for k, i := 0, c.head; k < c.robSlots; k++ {
		e := &c.rob[i]
		last := e.done
		if e.rate > 0 {
			last += Cycles(e.blocks() - 1) // a ramp's last block completes latest
		}
		if last > ref+1 {
			return false
		}
		if i++; i == len(c.rob) {
			i = 0
		}
	}
	return true
}

// stretchDoneTicks returns the number of steady-stretch ticks after
// which the retired count first reaches the budget: the first tick
// drains everything resident, each later tick retires FetchWidth.
func (c *Core) stretchDoneTicks() Cycles {
	need := c.budget - c.retired
	j := Cycles(1)
	if need > int64(c.robInstr) {
		w := int64(c.cfg.FetchWidth)
		j += Cycles((need - int64(c.robInstr) + w - 1) / w)
	}
	return j
}

// replay reproduces the combined effect of ticking every cycle in
// [from, to), using a closed form where the regime allows it. The event
// kernel only skips a cycle when NextWork proved the core cannot touch
// shared state there, which limits replay to four regimes: a full ROB
// stalled on its head entry (every skipped tick is a no-op), a steady
// compute stretch, a fill-toward-full stretch behind a blocked head,
// and a post-release drain streaming through completed entries.
func (c *Core) replay(from, to Cycles) {
	k := to - from
	if c.robFull() && c.robCount > 0 && c.rob[c.head].done >= to {
		// Fetch is blocked and NextWork woke us no later than the head
		// entry's completion cycle, so retirement was blocked throughout
		// the skipped range too: nothing to do.
		c.regimes.StallCycles += k
		return
	}
	if c.steadyCompute(from - 1) {
		c.regimes.ComputeCycles += k
		c.advanceComputeStretch(from, k)
		return
	}
	if k > 0 && c.fillCyclesAt(from-1) >= k {
		c.regimes.FillCycles += k
		c.advanceFill(from, k)
		return
	}
	if k > 0 && c.drainCyclesAt(from-1) >= k {
		c.regimes.DrainCycles += k
		c.advanceDrain(from, k)
		return
	}
	// Unreachable under the NextWork contract (it returns now+1 in every
	// other regime), but keeps Tick cycle-exact for any caller that
	// skips cycles on its own.
	c.regimes.SteppedCycles += k
	for cyc := from; cyc < to; cyc++ {
		c.retire(cyc)
		c.fetch(cyc)
	}
}

// advanceComputeStretch applies k (>=1) steady-compute ticks at cycles
// from .. from+k-1 in O(1): the first tick retires everything resident
// and each tick fetches FetchWidth gap instructions whose entry the next
// tick retires, leaving a single FetchWidth-entry completing at from+k.
func (c *Core) advanceComputeStretch(from, k Cycles) {
	w := c.cfg.FetchWidth
	retireTotal := int64(c.robInstr) + (int64(k)-1)*int64(w)
	if !c.done && c.retired+retireTotal >= c.budget {
		c.done = true
		c.finishCycle = from + c.stretchDoneTicks() - 1
	}
	c.retired += retireTotal
	c.gapLeft -= int(k) * w
	c.head = 0
	c.tail = 1
	c.rob[0] = robEntry{count: w, done: from + k}
	c.robCount = 1
	c.robSlots = 1
	c.robInstr = w
}

// fillCycles returns how many consecutive cycles after ref are pure
// fill-toward-full cycles: the ROB head is an incomplete long-latency
// entry blocking in-order retirement while fetch streams full-width
// runs of gap instructions into the remaining ROB space. Such cycles
// are provably core-local — no retirement (head blocked), no memory
// issue (a full FetchWidth of gap instructions absorbs the cycle's
// whole fetch bandwidth), no budget crossing (retired never moves) —
// so the kernel may skip them and replay in closed form. The count is
// bounded by the cycle something observable can happen: the memory op
// behind the gap run issuing (gap exhausted below full width), fetch
// hitting the ROB capacity wall (instruction occupancy or ring slots),
// or the head entry completing and unblocking retirement.
func (c *Core) fillCycles(ref Cycles) Cycles {
	w := c.cfg.FetchWidth
	if c.robCount == 0 || c.robFull() || c.gapLeft < w {
		return 0
	}
	head := c.rob[c.head].done
	if head <= ref+1 {
		return 0
	}
	k := Cycles(c.gapLeft / w)
	if r := Cycles((c.cfg.ROBSize - c.robInstr) / w); r < k {
		k = r
	}
	if s := Cycles(len(c.rob) - 1 - c.robCount); s < k {
		k = s
	}
	if h := head - ref - 1; h < k {
		k = h
	}
	return k
}

// advanceFill applies k (>=1) fill-toward-full ticks at cycles
// from .. from+k-1: each would push one full-width gap entry completing
// the next cycle, exactly as the per-cycle fetch does, while the blocked
// head keeps retirement (and therefore retired/done/budget state)
// frozen. The k entries form a perfect staircase, so the whole replay is
// a single ramp push — no retire scan, no fetch loop, O(1) ring traffic
// — and on the kernel side the entire stretch was a single event.
func (c *Core) advanceFill(from, k Cycles) {
	w := c.cfg.FetchWidth
	c.pushRamp(int(k)*w, from+1, w)
	c.gapLeft -= int(k) * w
}

// drainCycles returns how many consecutive cycles after ref are pure
// post-release drain cycles: the ROB head released (its entry is
// complete), so retirement streams through already-completed entries at
// full RetireWidth while fetch refills the freed space with full-width
// runs of gap instructions. Such cycles are provably core-local — no
// memory issue (a full FetchWidth of gap instructions absorbs the whole
// fetch bandwidth), no budget crossing (bounded below), and retirement
// never stalls (bounded by the first entry that could still be
// incomplete when reached) — so the kernel may skip them and replay in
// closed form. The regime requires FetchWidth == RetireWidth (the
// Table III core is 4/4), which makes ROB occupancy invariant across a
// drain cycle: each cycle retires exactly w instructions and pushes one
// w-wide gap entry completing the next cycle.
//
// The count is bounded by the cycle something observable can happen:
// the memory operation behind the gap run issuing (gap exhausted below
// full width), the budget crossing (retired advances w per cycle, so
// the crossing cycle is exact and must be ticked), or retirement
// reaching an entry that was not yet complete at ref+1 (conservatively
// treated as a stall even if it completes earlier — the kernel simply
// wakes and re-evaluates there).
func (c *Core) drainCycles(ref Cycles) Cycles {
	w := c.cfg.FetchWidth
	if w != c.cfg.RetireWidth || c.cfg.ROBSize < 2*w {
		return 0
	}
	if !c.havePend || c.gapLeft < w || c.robInstr < w || c.robCount == 0 {
		return 0
	}
	if c.rob[c.head].done > ref+1 {
		return 0 // head still blocked: the fill/stall regimes own this
	}
	k := Cycles(c.gapLeft / w)
	if !c.done {
		// Stop strictly before the budget-crossing cycle so the kernel
		// observes Done at exactly the oracle's cycle.
		need := c.budget - c.retired
		if crossing := Cycles((need + int64(w) - 1) / int64(w)); crossing-1 < k {
			k = crossing - 1
		}
	}
	if k <= 0 {
		return 0
	}
	// Entries pushed during the drain complete the cycle after their
	// push and are reached no earlier than that (retire precedes fetch
	// within a cycle), so only entries resident now can stall: cap the
	// drain at the first entry not complete by ref+1. The scan stops as
	// soon as the accumulated prefix covers k cycles of retirement —
	// beyond that a stopper cannot bind — keeping the common NextWork
	// call cheap (memory-bound ROBs hit an in-flight entry within a few
	// steps; compute-heavy ROBs cover k*w in a few wide entries).
	prefix, need := int64(0), int64(k)*int64(w)
	for i, idx := 0, c.head; i < c.robSlots && prefix < need; i++ {
		e := &c.rob[idx]
		if e.done > ref+1 {
			k = Cycles(prefix / int64(w))
			break
		}
		if e.rate > 0 {
			// A ramp's blocks complete on consecutive cycles: if the
			// staircase runs past ref+1, the first late block is the
			// stopper and only the earlier blocks count toward the
			// prefix.
			if cb := ref + 2 - e.done; cb < Cycles(e.blocks()) {
				prefix += int64(e.front) + int64(cb-1)*int64(e.rate)
				if k2 := Cycles(prefix / int64(w)); k2 < k {
					k = k2
				}
				break
			}
		}
		prefix += int64(e.count)
		if idx++; idx == len(c.rob) {
			idx = 0
		}
	}
	return k
}

// advanceDrain applies k (>=1) post-release drain ticks at cycles
// from .. from+k-1 in one pass: k*w instructions are consumed from the
// front of the ROB (walking entry boundaries exactly as the per-cycle
// retire would, including a partial head entry) and the k gap entries
// the per-cycle fetch would have pushed are appended — minus the ones
// retirement would already have consumed again, which are accounted
// arithmetically instead of ever being materialized. drainCycles
// guarantees no budget crossing and no retirement stall inside the
// window, so retired/gapLeft/ROB state are the only state touched.
func (c *Core) advanceDrain(from, k Cycles) {
	w := c.cfg.FetchWidth
	m := int64(k) * int64(w) // instructions retired across the window
	c.retired += m
	c.gapLeft -= int(k) * w
	for m > 0 && c.robCount > 0 {
		e := &c.rob[c.head]
		if int64(e.count) > m {
			mi := int(m)
			e.count -= mi
			if e.rate == 0 {
				// plain entry: nothing else to maintain
			} else if mi < e.front {
				e.front -= mi
			} else {
				q := (mi - e.front) / e.rate
				r := (mi - e.front) % e.rate
				e.front = e.rate - r
				e.done += Cycles(q + 1)
				c.robCount -= q + 1
			}
			c.robInstr -= mi
			m = 0
			break
		}
		m -= int64(e.count)
		c.robInstr -= e.count
		if e.rate > 0 {
			c.robCount -= e.blocks()
		} else {
			c.robCount--
		}
		if c.head++; c.head == len(c.rob) {
			c.head = 0
		}
		c.robSlots--
	}
	pushFrom := Cycles(0)
	if m > 0 {
		// Retirement ran through every originally resident entry and
		// into the gap entries pushed during the window: the first
		// m/w of those are fully consumed, the next one partially.
		pushFrom = Cycles(m / int64(w))
		rem := int(m % int64(w))
		if rem > 0 {
			c.push(robEntry{count: w - rem, done: from + pushFrom + 1})
			pushFrom++
		}
	}
	if n := k - pushFrom; n > 0 {
		// The window's surviving full-width gap entries, one per cycle,
		// as a single ramp.
		c.pushRamp(int(n)*w, from+pushFrom+1, w)
	}
}

// NextWork returns the next cycle at which Tick can interact with shared
// state (issue a memory operation to the memory system) or change
// kernel-visible state (retire instructions, cross the budget). The
// event-driven kernel jumps straight to the returned deadline; Tick then
// replays the skipped, provably core-local cycles in closed form. Four
// regimes advertise a deadline beyond now+1:
//
//   - ROB full: nothing can happen until the head entry's completion
//     cycle unblocks in-order retirement.
//   - Steady compute stretch: the pending memory operation issues on the
//     tick after the last full-width gap fetch, so the kernel may
//     fast-forward across the whole stretch.
//   - Budget crossing inside a stretch: the core must be woken exactly
//     when Done flips so the kernel observes the same final cycle as the
//     cycle-stepped oracle.
//   - Fill toward full: gap instructions stream into the ROB behind a
//     blocked head; the kernel may fast-forward to whichever comes
//     first — the memory issue behind the gap run, the capacity wall,
//     or the head unblocking (see fillCycles).
//   - Post-release drain: the head released and retirement streams
//     through completed entries while fetch refills; the kernel may
//     fast-forward to whichever comes first — the memory issue behind
//     the gap run, the budget crossing, or a still-incomplete resident
//     entry reaching the head (see drainCycles).
func (c *Core) NextWork(now Cycles) Cycles {
	if c.robFull() {
		if head := c.rob[c.head].done; head > now+1 {
			return head
		}
		// Head completes by now+1, so retirement resumes next tick even
		// though fetch is blocked this instant: the freed width re-opens
		// fetch within the same cycle, which is the drain regime.
		if k := c.drainCyclesAt(now); k > 0 {
			return now + k + 1
		}
		return now + 1
	}
	if c.steadyCompute(now) {
		next := now + Cycles(c.gapLeft/c.cfg.FetchWidth) + 1
		if !c.done {
			if doneAt := now + c.stretchDoneTicks(); doneAt < next {
				next = doneAt
			}
		}
		return next
	}
	if k := c.fillCyclesAt(now); k > 0 {
		return now + k + 1
	}
	if k := c.drainCyclesAt(now); k > 0 {
		return now + k + 1
	}
	return now + 1
}

func (c *Core) retire(now Cycles) {
	width := c.cfg.RetireWidth
	for width > 0 && c.robCount > 0 {
		e := &c.rob[c.head]
		if e.done > now {
			return // head not complete: in-order retirement stalls
		}
		n := e.count
		if e.rate > 0 {
			// Ramp: only blocks whose staircase cycle has passed are
			// retireable; a later block reaching the front stalls just
			// like a separate incomplete entry would.
			if avail := e.rampAvail(now); n > avail {
				n = avail
			}
		}
		if n > width {
			n = width
		}
		width -= n
		c.robInstr -= n
		c.retired += int64(n)
		if e.rate > 0 {
			e.count -= n
			if n < e.front {
				e.front -= n
			} else {
				// Crossed at least the front block; count the block
				// boundaries without dividing (n <= RetireWidth, so the
				// loop almost never iterates).
				r := n - e.front
				crossed := 1
				for r >= e.rate {
					r -= e.rate
					crossed++
				}
				e.front = e.rate - r
				e.done += Cycles(crossed)
				c.robCount -= crossed
			}
		} else {
			e.count -= n
			if e.count == 0 {
				c.robCount--
			}
		}
		if e.count == 0 {
			if c.head++; c.head == len(c.rob) {
				c.head = 0
			}
			c.robSlots--
		}
		if !c.done && c.retired >= c.budget {
			c.done = true
			c.finishCycle = now
		}
	}
}

func (c *Core) fetch(now Cycles) {
	width := c.cfg.FetchWidth
	for width > 0 && c.robInstr < c.cfg.ROBSize && c.robCount < len(c.rob)-1 {
		if c.gapLeft == 0 && !c.havePend {
			c.loadRecord()
		}
		if c.gapLeft > 0 {
			n := c.gapLeft
			if n > width {
				n = width
			}
			if room := c.cfg.ROBSize - c.robInstr; n > room {
				n = room
			}
			// Non-memory instructions complete next cycle.
			c.push(robEntry{count: n, done: now + 1})
			c.gapLeft -= n
			width -= n
			continue
		}
		// Memory operation: issue to the memory system now; it occupies
		// one ROB slot until its completion cycle.
		done := c.issue.Issue(c.id, c.pending, now)
		if done <= now {
			done = now + 1
		}
		c.push(robEntry{count: 1, done: done})
		c.MemOps++
		c.havePend = false
		width--
	}
}
