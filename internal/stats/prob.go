package stats

import "math"

// LogChoose returns log(C(n, k)) computed via log-gamma, valid for large n
// (the attack model evaluates C(G, k) with G ~ 70,000).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// LogBinomialPMF returns log P[X = k] for X ~ Binomial(n, p).
// It is exact in log space, usable down to probabilities ~1e-300.
func LogBinomialPMF(n, k int, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p). This is Equation 8
// of the paper: the probability that a row is selected exactly k times
// within G random guesses, p = 1/R.
func BinomialPMF(n, k int, p float64) float64 {
	return math.Exp(LogBinomialPMF(n, k, p))
}

// BinomialTail returns P[X >= k] for X ~ Binomial(n, p), summed in log
// space with stable accumulation. For the tiny p regimes in the attack
// model the sum converges in a handful of terms.
func BinomialTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	// Sum PMF from k upward; terms decay geometrically once past the mode.
	sum := 0.0
	for i := k; i <= n; i++ {
		term := BinomialPMF(n, i, p)
		sum += term
		if term < sum*1e-16 && i > int(float64(n)*p)+1 {
			break
		}
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// LogPoissonPMF returns log P[X = k] for X ~ Poisson(lambda).
func LogPoissonPMF(k int, lambda float64) float64 {
	if lambda <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return float64(k)*math.Log(lambda) - lambda - lg
}

// PoissonPMF returns P[X = k] for X ~ Poisson(lambda). This is the
// distribution used in §V-B (footnote 4) for the expected number of rows
// with k swaps: P[M rows] = e^{-R_K} R_K^M / M!.
func PoissonPMF(k int, lambda float64) float64 {
	return math.Exp(LogPoissonPMF(k, lambda))
}

// PoissonTail returns P[X >= k] for X ~ Poisson(lambda).
func PoissonTail(k int, lambda float64) float64 {
	if k <= 0 {
		return 1
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += PoissonPMF(i, lambda)
	}
	if sum > 1 {
		sum = 1
	}
	return 1 - sum
}

// ExpectedTrials returns the expected number of independent trials until an
// event with probability p first occurs (1/p), or +Inf when p underflows
// to zero. This converts per-epoch success probability to attack time.
func ExpectedTrials(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return 1 / p
}
