package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (all values must be positive),
// the conventional aggregate for normalized performance across workloads.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It copies and sorts xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}
