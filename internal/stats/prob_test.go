package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogChooseSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {10, 3, 120}, {52, 5, 2598960},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("C(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("out-of-range LogChoose should be -Inf")
	}
}

func TestLogChoosePascal(t *testing.T) {
	// Property: C(n,k) = C(n-1,k-1) + C(n-1,k) for moderate n.
	f := func(n0, k0 uint8) bool {
		n := int(n0%40) + 2
		k := int(k0) % n
		if k == 0 {
			return true
		}
		lhs := math.Exp(LogChoose(n, k))
		rhs := math.Exp(LogChoose(n-1, k-1)) + math.Exp(LogChoose(n-1, k))
		return math.Abs(lhs-rhs)/rhs < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, c := range []struct {
		n int
		p float64
	}{{20, 0.3}, {100, 0.01}, {1000, 0.5}} {
		sum := 0.0
		for k := 0; k <= c.n; k++ {
			sum += BinomialPMF(c.n, k, c.p)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("sum of Binomial(%d,%g) PMF = %g", c.n, c.p, sum)
		}
	}
}

func TestBinomialPMFPaperRegime(t *testing.T) {
	// Equation 8 regime: G ~ 70,000 guesses, p = 1/131072, k = 3.
	// Mean is ~0.534; P[X=3] should be ~ e^-m m^3/6 (Poisson approx).
	g, p := 70000, 1.0/131072
	m := float64(g) * p
	want := math.Exp(-m) * m * m * m / 6
	got := BinomialPMF(g, 3, p)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("BinomialPMF = %g, Poisson approx %g", got, want)
	}
}

func TestBinomialTail(t *testing.T) {
	if got := BinomialTail(10, 0, 0.5); got != 1 {
		t.Errorf("P[X>=0] = %g, want 1", got)
	}
	if got := BinomialTail(10, 11, 0.5); got != 0 {
		t.Errorf("P[X>=11] = %g, want 0", got)
	}
	// P[X>=1] = 1 - (1-p)^n.
	n, p := 100, 0.02
	want := 1 - math.Pow(1-p, float64(n))
	if got := BinomialTail(n, 1, p); math.Abs(got-want) > 1e-9 {
		t.Errorf("P[X>=1] = %g, want %g", got, want)
	}
}

func TestBinomialTailMonotone(t *testing.T) {
	f := func(k0 uint8) bool {
		n, p := 200, 0.05
		k := int(k0) % n
		return BinomialTail(n, k, p) >= BinomialTail(n, k+1, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoissonPMFAndTail(t *testing.T) {
	sum := 0.0
	for k := 0; k < 100; k++ {
		sum += PoissonPMF(k, 3.5)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Poisson(3.5) PMF sums to %g", sum)
	}
	if got := PoissonTail(0, 3.5); got != 1 {
		t.Errorf("P[X>=0] = %g", got)
	}
	// P[X>=1] = 1 - e^-lambda.
	want := 1 - math.Exp(-3.5)
	if got := PoissonTail(1, 3.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("P[X>=1] = %g, want %g", got, want)
	}
	if PoissonPMF(0, 0) != 1 || PoissonPMF(3, 0) != 0 {
		t.Error("degenerate Poisson wrong")
	}
}

func TestExpectedTrials(t *testing.T) {
	if got := ExpectedTrials(0.25); got != 4 {
		t.Errorf("ExpectedTrials(0.25) = %g", got)
	}
	if !math.IsInf(ExpectedTrials(0), 1) {
		t.Error("ExpectedTrials(0) should be +Inf")
	}
}

func TestZipfDistribution(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 1.0, 100)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should be ~2x rank 1 under s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("rank0/rank1 = %g, want ~2", ratio)
	}
	// Probabilities must sum to 1 and match empirical counts roughly.
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Zipf probs sum to %g", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(100) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRNG(12)
	z := NewZipf(r, 0, 10)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-12 {
			t.Fatalf("Prob(%d) = %g, want 0.1", i, z.Prob(i))
		}
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %g", g)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with zero should be 0")
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Error("Min/Max wrong")
	}
	if p := Percentile(xs, 50); math.Abs(p-2.5) > 1e-12 {
		t.Errorf("Percentile(50) = %g", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("Percentile(0) = %g", p)
	}
	if p := Percentile(xs, 100); p != 4 {
		t.Errorf("Percentile(100) = %g", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
	if s := Stddev([]float64{2, 2, 2}); s != 0 {
		t.Errorf("Stddev of constant = %g", s)
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 || Stddev(nil) != 0 {
		t.Error("empty-slice summaries should be 0")
	}
}
