package stats

import (
	"math"
	"sync"
)

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. The synthetic workload generators use it to model row-
// activation locality: a large exponent concentrates activations on a few
// hot rows (gcc-like behaviour), a small exponent spreads them (mcf-like).
//
// Sampling uses the inverse-CDF over a precomputed cumulative table, which
// is exact and fast for the table sizes used by the trace generators.
type Zipf struct {
	cdf []float64
	// bucket[j] (j in [0,2048]) is the first rank whose cdf entry is
	// >= j/2048, clamped to len(cdf)-1. Next seeds its binary search with
	// bucket[floor(2048u)] .. bucket[floor(2048u)+1], which brackets the
	// answer and cuts the search from log2(n) cold probes over the full
	// table to a handful within one mostly-resident span. The result is
	// the same rank the full-range search returns, so sampling stays
	// bit-identical.
	bucket []int32
	rng    *RNG
}

// cdfCache shares the cumulative tables across samplers: a figure sweep
// builds the same (s, n) table for every core of every run of every
// cell, and the O(n) construction is dominated by math.Pow — a visible
// slice of kernel-benchmark profiles. Tables are immutable after
// construction (Next and Prob only read), so sharing one slice across
// concurrently running simulations is safe, and a cached table is
// bit-identical to a freshly built one by construction.
var cdfCache sync.Map // cdfKey -> *zipfTable

type cdfKey struct {
	s float64
	n int
}

type zipfTable struct {
	cdf    []float64
	bucket []int32
}

// NewZipf returns a Zipf sampler over n ranks with exponent s >= 0.
// s == 0 degenerates to the uniform distribution. Panics if n <= 0.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	key := cdfKey{s: s, n: n}
	if cached, ok := cdfCache.Load(key); ok {
		t := cached.(*zipfTable)
		return &Zipf{cdf: t.cdf, bucket: t.bucket, rng: rng}
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	bucket := make([]int32, 2049)
	r := 0
	for j := range bucket {
		t := float64(j) / 2048
		for r < n-1 && cdf[r] < t {
			r++
		}
		bucket[j] = int32(r)
	}
	cdfCache.Store(key, &zipfTable{cdf: cdf, bucket: bucket})
	return &Zipf{cdf: cdf, bucket: bucket, rng: rng}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next sampled rank in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u, bracketed by the
	// bucket index (see the field comment for why this is exact).
	j := int(u * 2048)
	if j > 2047 {
		j = 2047
	}
	lo, hi := int(z.bucket[j]), int(z.bucket[j+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
