package stats

import "math"

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. The synthetic workload generators use it to model row-
// activation locality: a large exponent concentrates activations on a few
// hot rows (gcc-like behaviour), a small exponent spreads them (mcf-like).
//
// Sampling uses the inverse-CDF over a precomputed cumulative table, which
// is exact and fast for the table sizes used by the trace generators.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a Zipf sampler over n ranks with exponent s >= 0.
// s == 0 degenerates to the uniform distribution. Panics if n <= 0.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next sampled rank in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
