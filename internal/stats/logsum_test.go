package stats

import (
	"math"
	"testing"
)

func TestLogAddExpBasics(t *testing.T) {
	negInf := math.Inf(-1)
	if got := LogAddExp(negInf, negInf); !math.IsInf(got, -1) {
		t.Errorf("LogAddExp(-Inf, -Inf) = %g, want -Inf", got)
	}
	// -Inf is the identity on either side.
	if got := LogAddExp(negInf, -3.5); got != -3.5 {
		t.Errorf("LogAddExp(-Inf, x) = %g, want -3.5", got)
	}
	if got := LogAddExp(-3.5, negInf); got != -3.5 {
		t.Errorf("LogAddExp(x, -Inf) = %g, want -3.5", got)
	}
	// log(e^0 + e^0) = log 2, and the arguments commute bit-for-bit.
	if got := LogAddExp(0, 0); math.Abs(got-math.Ln2) > 1e-15 {
		t.Errorf("LogAddExp(0, 0) = %g, want ln 2", got)
	}
	if LogAddExp(-1, -9) != LogAddExp(-9, -1) {
		t.Error("LogAddExp is not commutative")
	}
}

// The underflow pin behind the tail-regime tallies: a million terms of
// magnitude e^-750 each underflow to exactly 0 in linear space (the
// naive sum is identically zero), but accumulate in log space to
// -750 + log(n) with full precision. This is the regime Figs. 6/10's
// 10^13-day points live in — per-window success probabilities far below
// the smallest positive float64.
func TestLogSumExpManyTinyTermsNoUnderflow(t *testing.T) {
	const n = 1_200_000
	const x = -750.0
	if math.Exp(x) != 0 {
		t.Fatalf("test premise broken: e^%g = %g should underflow to 0", x, math.Exp(x))
	}
	xs := make([]float64, n)
	naive := 0.0
	for i := range xs {
		xs[i] = x
		naive += math.Exp(x)
	}
	if naive != 0 {
		t.Fatalf("naive linear-space sum = %g, premise is that it underflows", naive)
	}
	got := LogSumExp(xs)
	want := x + math.Log(n)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("LogSumExp of %d terms at %g = %.15g, want %.15g", n, x, got, want)
	}
}

func TestLogSumExpEmptyAndSingle(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %g, want -Inf", got)
	}
	if got := LogSumExp([]float64{-42}); got != -42 {
		t.Errorf("LogSumExp([x]) = %g, want -42", got)
	}
}

// LogSumExp's contract fixes left-to-right fold order, so the same
// slice always yields the identical float64 — the determinism the
// tally Result fold relies on.
func TestLogSumExpDeterministicOverSameOrder(t *testing.T) {
	xs := []float64{-700, -1.5, -350.25, -699.999, -2}
	first := LogSumExp(xs)
	for i := 0; i < 100; i++ {
		if got := LogSumExp(xs); math.Float64bits(got) != math.Float64bits(first) {
			t.Fatalf("run %d: LogSumExp changed bits: %x vs %x", i, math.Float64bits(got), math.Float64bits(first))
		}
	}
}

func TestLogPoissonTailMatchesLinearRegime(t *testing.T) {
	// Where PoissonTail is comfortably representable the log version is
	// its exact logarithm (passthrough branch).
	for _, c := range []struct {
		k      int
		lambda float64
	}{{1, 0.5}, {3, 0.2}, {8, 1.0}, {0, 2.0}} {
		want := math.Log(PoissonTail(c.k, c.lambda))
		if c.k == 0 {
			want = 0
		}
		if got := LogPoissonTail(c.k, c.lambda); got != want {
			t.Errorf("LogPoissonTail(%d, %g) = %g, want %g", c.k, c.lambda, got, want)
		}
	}
}

// Deep tail: PoissonTail's 1-minus-sum collapses to cancellation noise
// (a few ulps of 1, or exactly 0) long before the true tail reaches
// float64's underflow bound — at k=150, lambda=0.1 the true tail is
// ~e^-600 but the linear computation returns ~2e-16 of pure noise.
// LogPoissonTail must ignore that noise and stay finite, strictly
// decreasing in k, and consistent with the leading PMF term (which
// dominates the tail when k >> lambda).
func TestLogPoissonTailDeepTail(t *testing.T) {
	const lambda = 0.1
	if p := PoissonTail(150, lambda); p > 1e-13 {
		t.Fatalf("test premise broken: PoissonTail(150, %g) = %g, want noise-floor value below 1e-13", lambda, p)
	}
	if lp := LogPoissonTail(150, lambda); lp > -500 {
		t.Fatalf("LogPoissonTail(150, %g) = %g: trusted the linear noise floor instead of the log-space series", lambda, lp)
	}
	prev := 0.0
	for k := 20; k <= 150; k += 10 {
		lp := LogPoissonTail(k, lambda)
		if math.IsInf(lp, 0) || math.IsNaN(lp) {
			t.Fatalf("LogPoissonTail(%d, %g) = %g, want finite", k, lambda, lp)
		}
		if lp >= prev {
			t.Errorf("tail not decreasing: LogPoissonTail(%d) = %g >= %g", k, lp, prev)
		}
		// The first term dominates: log P[X >= k] is within a few percent
		// of log P[X = k] out here.
		pmf := LogPoissonPMF(k, lambda)
		if lp < pmf || lp > pmf+0.01 {
			t.Errorf("LogPoissonTail(%d) = %g not dominated by PMF term %g", k, lp, pmf)
		}
		prev = lp
	}
}

func TestSubSeedIndependence(t *testing.T) {
	// Distinct paths from one root must give distinct seeds, and the
	// derivation is pure.
	seen := map[uint64]bool{}
	const root = 0xf16
	for i := uint64(0); i < 1000; i++ {
		s := SubSeed(root, i)
		if seen[s] {
			t.Fatalf("SubSeed collision at index %d", i)
		}
		seen[s] = true
		if s != SubSeed(root, i) {
			t.Fatalf("SubSeed not deterministic at index %d", i)
		}
	}
	// Nested paths (cell then batch) differ from flat ones.
	if SubSeed(root, 1, 2) == SubSeed(root, 1) || SubSeed(root, 1, 2) == SubSeed(root, 2) {
		t.Error("nested SubSeed path collides with flat path")
	}
}
