package stats

import "math"

// This file holds the log-space accumulation primitives behind the
// distributed Monte-Carlo tallies (internal/attack): the security
// figures quote attack times out to 10^13 days, whose per-window
// success probabilities are far below the smallest positive float64, so
// sums of trial outcomes and tail probabilities must be carried as
// logarithms end to end. Accumulation order is part of each function's
// contract — callers that need bit-reproducible results feed values in
// a canonical order and get the identical float64 back every time.

// LogAddExp returns log(e^a + e^b) without intermediate overflow or
// underflow. Either argument may be -Inf (an empty accumulator).
func LogAddExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogSumExp returns log(sum of e^x over xs), folding left-to-right in
// slice order. An empty slice yields -Inf. Because every partial sum is
// kept in log space, 10^6 terms of magnitude e^-750 — each of which
// underflows to exactly 0 under naive math.Exp-and-add — accumulate to
// the correct log(n) + x.
func LogSumExp(xs []float64) float64 {
	acc := math.Inf(-1)
	for _, x := range xs {
		acc = LogAddExp(acc, x)
	}
	return acc
}

// LogPoissonTail returns log P[X >= k] for X ~ Poisson(lambda), exact in
// log space where PoissonTail would underflow to 0 (deep tails: k far
// above lambda). The attack model's per-window success probability is a
// Poisson tail with lambda < 1 and k up to ~10, which underflows float64
// near k=13 — exactly the 10^13-day regime of Figs. 6/10.
func LogPoissonTail(k int, lambda float64) float64 {
	if k <= 0 {
		return 0
	}
	if lambda <= 0 {
		return math.Inf(-1)
	}
	// Moderate tails: the linear-space sum is exact enough and agrees
	// with PoissonTail bit-for-bit. The cutoff is NOT float64's
	// underflow bound: PoissonTail computes 1 - sum(PMF), whose
	// cancellation noise floor is ~k*eps (~1e-13 for k up to ~500) — a
	// deep tail can come back as a few ulps of pure noise instead of 0.
	// Trust the linear value only well above that floor; below it, the
	// log-space series is exact.
	if p := PoissonTail(k, lambda); p > 1e-9 {
		return math.Log(p)
	}
	// Deep tail: sum PMF terms upward from k in log space. Terms decay
	// by lambda/(i+1) < 1 per step (k > lambda here, or the tail could
	// not be tiny), so the series converges in a handful of terms.
	acc := math.Inf(-1)
	for i := k; ; i++ {
		term := LogPoissonPMF(i, lambda)
		acc = LogAddExp(acc, term)
		if term < acc-40 { // remaining mass < e^-40 of the sum
			return acc
		}
	}
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche over uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SubSeed derives a child seed from a root seed and an index path,
// mixing each part through the SplitMix64 finalizer. It is the basis of
// the repository's RNG sub-stream scheme: a distributed experiment
// carries one root seed, every independent unit of work (a Monte-Carlo
// cell, a trial batch within a cell) derives its own seed as
// SubSeed(root, path...), and NewRNG over that seed gives a stream
// statistically independent of every sibling — with no shared RNG state
// to thread between units, so work order and placement cannot change
// any draw.
func SubSeed(root uint64, path ...uint64) uint64 {
	x := mix64(root + 0x9e3779b97f4a7c15)
	for _, p := range path {
		x = mix64(x ^ mix64(p+0x9e3779b97f4a7c15))
	}
	return x
}
