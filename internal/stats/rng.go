// Package stats provides the deterministic randomness and numerical
// machinery used by the reproduction: a seedable SplitMix64 /
// xoshiro256** RNG, log-space binomial and Poisson tail probabilities
// (the §III attack models behind Figs. 6-10 operate on probabilities as
// small as 1e-20), a Zipf sampler for workload row locality (Fig. 14's
// synthetic traces), and the summary statistics (geometric means) the
// §VI performance figures aggregate with.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). Every randomized structure in the
// repository draws from an RNG derived from the experiment seed so all
// results are bit-reproducible.
type RNG struct {
	s [4]uint64
}

// NewRNG returns an RNG seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into the xoshiro state. A zero
	// state would be absorbing, and SplitMix64 guarantees non-zero
	// output for any input sequence.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new RNG deterministically derived from r's current
// state, advancing r. Use it to hand independent streams to substructures.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, _ := mul64(v, uint64(n))
	return int(hi)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + t>>32 + (t&mask+a0*b1)>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of Bernoulli(p) trials up to and including the
// first success. For very small p it uses the inverse-CDF method to avoid
// looping. Returns at least 1. Panics if p <= 0 or p > 1.
func (r *RNG) Geometric(p float64) float64 {
	if p <= 0 || p > 1 {
		panic("stats: Geometric probability out of (0,1]")
	}
	if p == 1 {
		return 1
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return math.Ceil(math.Log(u) / math.Log1p(-p))
}

// Geom is a geometric sampler with a fixed success probability. It
// precomputes log(1-p) once, which Geometric recomputes on every draw —
// a measurable cost for the trace generators, which sample one gap per
// memory access with the same p for the whole run. Next consumes the
// RNG's stream exactly like Geometric(p) and, because the same
// math.Log1p(-p) value feeds the same division, produces bit-identical
// samples.
type Geom struct {
	rng  *RNG
	logq float64
	one  bool
}

// NewGeom returns a geometric sampler over r with success probability p.
// Panics if p <= 0 or p > 1, mirroring Geometric.
func NewGeom(r *RNG, p float64) *Geom {
	if p <= 0 || p > 1 {
		panic("stats: Geometric probability out of (0,1]")
	}
	return &Geom{rng: r, logq: math.Log1p(-p), one: p == 1}
}

// Next returns the next geometric sample (at least 1).
func (g *Geom) Next() float64 {
	if g.one {
		return 1
	}
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	return math.Ceil(math.Log(u) / g.logq)
}

// Poisson returns a sample from the Poisson distribution with mean lambda.
// For small lambda it uses Knuth's product method; for large lambda a
// normal approximation with continuity correction (adequate for the
// workload models that use it).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k, p := 0, 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := r.Normal()*math.Sqrt(lambda) + lambda
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// Normal returns a standard normal sample (Box-Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Binomial returns a sample of the number of successes in n Bernoulli(p)
// trials. Small n·p uses explicit trials or Poisson approximation; large
// uses a normal approximation clamped to [0, n].
func (r *RNG) Binomial(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	np := float64(n) * p
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	if np < 10 && p < 0.01 {
		k := r.Poisson(np)
		if k > n {
			k = n
		}
		return k
	}
	sd := math.Sqrt(np * (1 - p))
	k := int(r.Normal()*sd + np + 0.5)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
