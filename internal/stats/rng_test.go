package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams start identically")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(2)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + int(seed%100)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(3)
	for _, p := range []float64{0.5, 0.01, 1e-4} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			g := r.Geometric(p)
			if g < 1 {
				t.Fatalf("Geometric(%g) = %g < 1", p, g)
			}
			sum += g
		}
		mean, want := sum/n, 1/p
		if math.Abs(mean-want)/want > 0.1 {
			t.Errorf("Geometric(%g) mean = %g, want ~%g", p, mean, want)
		}
	}
	if g := r.Geometric(1); g != 1 {
		t.Errorf("Geometric(1) = %g, want 1", g)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(4)
	for _, lambda := range []float64{0.5, 5, 50, 500} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Errorf("Poisson(%g) mean = %g", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive lambda should be 0")
	}
}

func TestBinomialMoments(t *testing.T) {
	r := NewRNG(5)
	cases := []struct {
		n int
		p float64
	}{{10, 0.3}, {1000, 0.5}, {100000, 1e-4}, {70000, 1.0 / 131072}}
	for _, c := range cases {
		sum := 0.0
		const iters = 5000
		for i := 0; i < iters; i++ {
			k := r.Binomial(c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("Binomial(%d,%g) = %d out of range", c.n, c.p, k)
			}
			sum += float64(k)
		}
		mean, want := sum/iters, float64(c.n)*c.p
		tol := 5 * math.Sqrt(want*(1-c.p)/iters) // 5 sigma of the sample mean
		if tol < 0.05*want {
			tol = 0.05 * want
		}
		if math.Abs(mean-want) > tol {
			t.Errorf("Binomial(%d,%g) mean = %g, want ~%g", c.n, c.p, mean, want)
		}
	}
	if r.Binomial(10, 0) != 0 || r.Binomial(10, 1) != 10 || r.Binomial(0, 0.5) != 0 {
		t.Error("Binomial edge cases wrong")
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(6)
	sum, sq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sq += v * v
	}
	if mean := sum / n; math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean = %g, want ~0", mean)
	}
	if variance := sq / n; math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance = %g, want ~1", variance)
	}
}
