// Package power models the extra power consumption of RRS and Scale-SRS
// (Table V): SRAM power from the on-chip structures (a linear
// capacity-plus-access model calibrated against the paper's
// CACTI-at-32nm figures) and DRAM power overhead from the additional row
// migrations each mechanism performs.
package power

import "repro/internal/storage"

// Report is one mechanism's extra power at a given T_RH.
type Report struct {
	Mechanism string
	TRH       int

	// SRAMmW is the on-chip structure power in milliwatts per channel.
	SRAMmW float64
	// DRAMOverheadPct is the extra DRAM power from row swaps as a
	// percentage of baseline DRAM power.
	DRAMOverheadPct float64
}

// Model computes power from structure sizes and swap rates.
type Model struct {
	Storage storage.Model

	// SRAM linear model: P = BasemW + PerKBmW * (per-channel KB).
	// Calibrated to Table V: RRS 36 KB/bank -> 903 mW/channel and
	// Scale-SRS 18.7 KB/bank -> 703 mW/channel at T_RH 4800
	// (16 banks per channel share sense/decode overheads, hence the
	// per-bank KB scaled by bank count below).
	BasemW  float64
	PerKBmW float64

	// DRAM model: each migration moves two 8 KB rows; energy expressed
	// relative to the demand traffic of a fully loaded channel.
	MigrationRelCost float64
}

// NewModel returns the calibrated model.
func NewModel() Model {
	// Solve the two-point linear system from Table V (per-channel KB =
	// 16 banks x per-bank KB): 903 = B + c*576, 703 = B + c*299.2.
	c := (903.0 - 703.0) / (16 * (36.0 - 18.7))
	b := 903.0 - c*16*36.0
	return Model{
		Storage:          storage.NewModel(),
		BasemW:           b,
		PerKBmW:          c,
		MigrationRelCost: 1.0,
	}
}

// banksPerChannel returns banks sharing one channel's structures.
func (m Model) banksPerChannel() int {
	g := m.Storage.Geometry
	return g.RanksPerCh * g.BanksPerRnk
}

// sramFromKB converts a per-bank structure size to channel power.
func (m Model) sramFromKB(perBankKB float64) float64 {
	return m.BasemW + m.PerKBmW*perBankKB*float64(m.banksPerChannel())
}

// migrationsPerWindow returns worst-case row migrations per refresh
// window for a mechanism: RRS performs an unswap + swap (two migrations)
// per T_S crossing; Scale-SRS swaps once plus a deferred place-back, but
// at half the crossing rate (swap rate 3 vs 6).
func (m Model) migrationsPerWindow(mech string, trh int) float64 {
	acts := float64(m.Storage.Timing.MaxActivations())
	switch mech {
	case "rrs":
		ts := float64(trh / 6)
		return 2 * acts / ts
	default: // scale-srs
		ts := float64(trh / 3)
		return 1.6 * acts / ts // swap + amortized place-back + counter access
	}
}

// dramOverheadPct converts migrations to a percentage of DRAM activity
// for a fully hammered bank: each migration re-activates two rows on top
// of the window's ACT_max demand activations. At T_RH 4800 this yields
// the paper's 0.5% (RRS) and 0.2% (Scale-SRS) exactly:
// 2 x (ACT_max/800) x 2 / ACT_max = 0.5%.
func (m Model) dramOverheadPct(mech string, trh int) float64 {
	acts := float64(m.Storage.Timing.MaxActivations())
	extra := m.migrationsPerWindow(mech, trh) * 2 * m.MigrationRelCost
	return extra / acts * 100
}

// RRS returns RRS's extra power at the given T_RH.
func (m Model) RRS(trh int) Report {
	return Report{
		Mechanism:       "rrs",
		TRH:             trh,
		SRAMmW:          m.sramFromKB(m.Storage.RRS(trh).TotalKB()),
		DRAMOverheadPct: m.dramOverheadPct("rrs", trh),
	}
}

// ScaleSRS returns Scale-SRS's extra power at the given T_RH.
func (m Model) ScaleSRS(trh int) Report {
	return Report{
		Mechanism:       "scale-srs",
		TRH:             trh,
		SRAMmW:          m.sramFromKB(m.Storage.ScaleSRS(trh).TotalKB()),
		DRAMOverheadPct: m.dramOverheadPct("scale-srs", trh),
	}
}

// PaperTable5 returns the values reported in Table V (T_RH 4800).
func PaperTable5() (rrs, scale Report) {
	rrs = Report{Mechanism: "rrs", TRH: 4800, SRAMmW: 903, DRAMOverheadPct: 0.5}
	scale = Report{Mechanism: "scale-srs", TRH: 4800, SRAMmW: 703, DRAMOverheadPct: 0.2}
	return rrs, scale
}
