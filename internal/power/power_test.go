package power

import (
	"math"
	"testing"
)

func TestCalibrationMatchesTable5(t *testing.T) {
	m := NewModel()
	rrs := m.RRS(4800)
	scale := m.ScaleSRS(4800)
	paperRRS, paperScale := PaperTable5()
	// The SRAM model is calibrated to Table V's per-bank sizes; our
	// first-principles sizes differ slightly, so allow a band.
	if math.Abs(rrs.SRAMmW-paperRRS.SRAMmW) > 200 {
		t.Errorf("RRS SRAM = %.0f mW, paper %.0f", rrs.SRAMmW, paperRRS.SRAMmW)
	}
	if math.Abs(scale.SRAMmW-paperScale.SRAMmW) > 200 {
		t.Errorf("Scale SRAM = %.0f mW, paper %.0f", scale.SRAMmW, paperScale.SRAMmW)
	}
	// Headline: Scale-SRS ~23% lower on-chip power.
	saving := 1 - scale.SRAMmW/rrs.SRAMmW
	if saving < 0.10 || saving > 0.35 {
		t.Errorf("SRAM saving = %.1f%%, paper: ~23%%", saving*100)
	}
}

func TestDRAMOverheadShape(t *testing.T) {
	m := NewModel()
	rrs := m.RRS(4800)
	scale := m.ScaleSRS(4800)
	if rrs.DRAMOverheadPct <= scale.DRAMOverheadPct {
		t.Errorf("RRS DRAM overhead (%.2f%%) should exceed Scale-SRS (%.2f%%)",
			rrs.DRAMOverheadPct, scale.DRAMOverheadPct)
	}
	// Table V magnitudes: fractions of a percent.
	if rrs.DRAMOverheadPct > 2 || rrs.DRAMOverheadPct < 0.1 {
		t.Errorf("RRS DRAM overhead = %.2f%%, paper: 0.5%%", rrs.DRAMOverheadPct)
	}
	if scale.DRAMOverheadPct > 1 || scale.DRAMOverheadPct < 0.05 {
		t.Errorf("Scale DRAM overhead = %.2f%%, paper: 0.2%%", scale.DRAMOverheadPct)
	}
}

func TestOverheadGrowsAtLowerTRH(t *testing.T) {
	m := NewModel()
	if m.RRS(1200).SRAMmW <= m.RRS(4800).SRAMmW {
		t.Error("RRS SRAM power should grow as T_RH drops (bigger RIT)")
	}
	if m.RRS(1200).DRAMOverheadPct <= m.RRS(4800).DRAMOverheadPct {
		t.Error("RRS DRAM overhead should grow as T_RH drops (more swaps)")
	}
	// Scale-SRS stays cheaper at every threshold.
	for _, trh := range []int{4800, 2400, 1200} {
		if m.ScaleSRS(trh).SRAMmW >= m.RRS(trh).SRAMmW {
			t.Errorf("Scale-SRS SRAM not cheaper at TRH %d", trh)
		}
	}
}

func TestPaperTable5Values(t *testing.T) {
	rrs, scale := PaperTable5()
	if rrs.SRAMmW != 903 || scale.SRAMmW != 703 {
		t.Error("paper SRAM values wrong")
	}
	if rrs.DRAMOverheadPct != 0.5 || scale.DRAMOverheadPct != 0.2 {
		t.Error("paper DRAM values wrong")
	}
}
