// Benchmark harness: one testing.B target per table and figure of the
// paper, plus ablation and microarchitecture benches. Security figures
// run their full analytical sweep per iteration and report the headline
// quantity as a custom metric; performance figures run a reduced
// workload subset through the cycle simulator (the full 78-workload
// sweep is available via cmd/rowswap-figures).
//
// Run everything:  go test -bench=. -benchmem
package repro_test

import (
	"io"
	"testing"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/tracker"
)

// benchPerfOpts is the reduced configuration for simulator-backed
// figures: 3 representative workloads, 4 cores, short traces.
func benchPerfOpts() report.PerfOptions {
	return report.PerfOptions{
		Workloads: []string{"gcc", "gups", "povray"},
		Cores:     4,
		Sim:       sim.Options{Instructions: 1_000_000},
	}
}

// --- Tables ---

func BenchmarkTable01ThresholdHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Table1(io.Discard)
	}
	b.ReportMetric(config.ThresholdReductionFactor(), "x-reduction")
}

func BenchmarkTable04Storage(b *testing.B) {
	m := storage.NewModel()
	for i := 0; i < b.N; i++ {
		report.Table4(io.Discard)
	}
	b.ReportMetric(m.Reduction(1200), "x-storage-reduction@1200")
}

func BenchmarkTable05Power(b *testing.B) {
	m := power.NewModel()
	for i := 0; i < b.N; i++ {
		report.Table5(io.Discard)
	}
	b.ReportMetric(100*(1-m.ScaleSRS(4800).SRAMmW/m.RRS(4800).SRAMmW), "%-sram-saving")
}

// --- Security figures ---

func BenchmarkFig01aTimeToBreakRRSRandomGuess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Fig1a(io.Discard)
	}
	b.ReportMetric(attack.NewRandomGuessRRS(4800, 6).TimeToBreakDays(0), "days-to-break@4800r6")
}

func BenchmarkFig06JuggernautTimeToBreak(b *testing.B) {
	var days float64
	for i := 0; i < b.N; i++ {
		report.Fig6(io.Discard, 0)
		_, tt := attack.NewJuggernautRRS(4800, 6).BestRounds()
		days = tt / config.Day
	}
	b.ReportMetric(days*24, "hours-to-break@4800r6")
}

func BenchmarkFig06MonteCarlo(b *testing.B) {
	m := attack.NewJuggernautRRS(4800, 6)
	n, _ := m.BestRounds()
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.MonteCarlo(m, n, 10, rng)
	}
}

func BenchmarkFig07RequiredGuesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Fig7(io.Discard)
	}
}

func BenchmarkFig10SRSTimeToBreak(b *testing.B) {
	var years float64
	for i := 0; i < b.N; i++ {
		report.Fig10(io.Discard)
		_, tt := attack.NewJuggernautSRS(4800, 6).BestRounds()
		years = tt / config.Year
	}
	b.ReportMetric(years, "years-to-break-srs@4800r6")
}

func BenchmarkFig13OutlierAppearance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Fig13(io.Discard)
	}
	b.ReportMetric(attack.NewOutlierModel(4800, 3).TimeToAppearDays(3, 3), "days-to-3-outliers@r3")
}

func BenchmarkSecMultiBankAttack(b *testing.B) {
	m := attack.NewJuggernautRRS(4800, 6)
	m.Banks = 16
	var days float64
	for i := 0; i < b.N; i++ {
		_, tt := m.BestRounds()
		days = tt / config.Day
	}
	b.ReportMetric(days, "days-to-break-16bank")
}

func BenchmarkSecOpenPagePolicy(b *testing.B) {
	m := attack.NewJuggernautRRS(4800, 6)
	m.ACTPeriodNS = 60
	var days float64
	for i := 0; i < b.N; i++ {
		_, tt := m.BestRounds()
		days = tt / config.Day
	}
	b.ReportMetric(days, "days-to-break-openpage")
}

func BenchmarkSecDDR5(b *testing.B) {
	m := attack.NewJuggernautRRS(3100, 10)
	m.Timing = config.DDR5()
	var days float64
	for i := 0; i < b.N; i++ {
		_, tt := m.BestRounds()
		days = tt / config.Day
	}
	b.ReportMetric(days, "days-to-break-ddr5@3100r10")
}

// --- Performance figures (reduced workload subset) ---

func BenchmarkFig04UnswapVsNoUnswap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig4(io.Discard, benchPerfOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12SRSvsRRSPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig12(io.Discard, benchPerfOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14ScaleSRSvsRRS(b *testing.B) {
	var rows []report.PerfRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = report.Fig14(io.Discard, benchPerfOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Workload == "gcc" {
			b.ReportMetric((1-r.Norm["rrs"])*100, "%-gcc-rrs-slowdown")
			b.ReportMetric((1-r.Norm["scale-srs"])*100, "%-gcc-scale-slowdown")
		}
	}
}

func BenchmarkFig15SensitivityTRH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig15(io.Discard, benchPerfOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16HydraTracker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig16(io.Discard, benchPerfOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComparatorsIXA: BlockHammer and AQUA vs Scale-SRS (§IX-A).
func BenchmarkComparatorsIXA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Comparators(io.Discard, benchPerfOpts(), 1200); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design decisions called out in DESIGN.md) ---

// AblationSwapRate: Scale-SRS's reduced swap rate is the scalability
// lever — compare swap rate 3 vs 6 at T_RH 1200 on the hot workload.
func BenchmarkAblationSwapRate(b *testing.B) {
	w, _ := trace.WorkloadByName("gcc", 4)
	opt := sim.Options{Instructions: 800_000}
	for i := 0; i < b.N; i++ {
		for _, rate := range []int{3, 6} {
			sys := config.Default()
			sys.Core.Cores = 4
			sys.Mitigation = config.DefaultScaleSRS(1200)
			sys.Mitigation.SwapRate = rate
			if _, err := sim.Run(w, sys, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// AblationPlaceBackRate: SRS's lazy place-back vs the window-end bulk
// unravel of chained swaps (the Fig. 4 motivation).
func BenchmarkAblationPlaceBackRate(b *testing.B) {
	w, _ := trace.WorkloadByName("gcc", 4)
	opt := sim.Options{Instructions: 800_000}
	for i := 0; i < b.N; i++ {
		sys := config.Default()
		sys.Core.Cores = 4
		sys.Mitigation = config.DefaultSRS(1200) // lazy place-back
		if _, err := sim.Run(w, sys, opt); err != nil {
			b.Fatal(err)
		}
		sys.Mitigation = config.DefaultRRS(1200) // chained, bulk unravel
		sys.Mitigation.ImmediateUnswap = false
		if _, err := sim.Run(w, sys, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationTrackerChoice: Misra-Gries (on-chip) vs Hydra (memory-backed).
func BenchmarkAblationTrackerChoice(b *testing.B) {
	w, _ := trace.WorkloadByName("gcc", 4)
	opt := sim.Options{Instructions: 800_000}
	for i := 0; i < b.N; i++ {
		for _, trk := range []config.TrackerKind{config.TrackerMisraGries, config.TrackerHydra} {
			sys := config.Default()
			sys.Core.Cores = 4
			sys.Mitigation = config.DefaultRRS(1200)
			sys.Mitigation.Tracker = trk
			if _, err := sim.Run(w, sys, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// AblationCompactRIT: the §VIII-4 single-table tagged RIT vs the split
// real/mirrored layout — identical behaviour, nearly half the RIT SRAM.
func BenchmarkAblationCompactRIT(b *testing.B) {
	sys := config.Default()
	sys.Geometry.Channels = 1
	sys.Geometry.BanksPerRnk = 2
	sys.Geometry.RowsPerBank = 8192
	sys.Mitigation = config.DefaultSRS(4800)
	for i := 0; i < b.N; i++ {
		for _, compact := range []bool{false, true} {
			mem := dram.NewMemory(sys.Geometry, dram.FromConfig(sys.Timing, sys.Core.ClockGHz))
			var s *core.SRS
			if compact {
				s = core.NewSRSCompact(mem, sys, sys.Mitigation, stats.NewRNG(1))
			} else {
				s = core.NewSRS(mem, sys, sys.Mitigation, stats.NewRNG(1))
			}
			for j := 0; j < 500; j++ {
				s.OnAggressor(j%2, dram.RowID(j%200), dram.Cycles(j)*20_000)
			}
		}
	}
	m := storage.NewModel()
	b.ReportMetric(m.ScaleSRS(1200).RITBytes/m.ScaleSRSCompact(1200).RITBytes, "x-rit-storage-saving")
}

// --- Microarchitecture benches ---

func BenchmarkSwapOperation(b *testing.B) {
	sys := config.Default()
	sys.Mitigation = config.DefaultSRS(4800)
	mem := dram.NewMemory(sys.Geometry, dram.FromConfig(sys.Timing, sys.Core.ClockGHz))
	s := core.NewSRS(mem, sys, sys.Mitigation, stats.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnAggressor(i%32, dram.RowID(i%1000), dram.Cycles(i)*20_000)
		// End an epoch periodically, as the controller does: the RIT is
		// provisioned per epoch and relies on unlocking for eviction.
		if i%1000 == 999 {
			s.OnWindowEnd(dram.Cycles(i) * 20_000)
		}
	}
}

func BenchmarkTrackerRecordMisraGries(b *testing.B) {
	t := tracker.NewMisraGries(32, 1700)
	rng := stats.NewRNG(2)
	rows := make([]int32, 4096)
	for i := range rows {
		rows[i] = int32(rng.Intn(128 * 1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.RecordACT(i%32, rows[i%len(rows)])
	}
}

func BenchmarkTrackerRecordHydra(b *testing.B) {
	t := tracker.NewHydra(32, 128*1024, 128, 400, 2048)
	rng := stats.NewRNG(3)
	rows := make([]int32, 4096)
	for i := range rows {
		rows[i] = int32(rng.Intn(128 * 1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.RecordACT(i%32, rows[i%len(rows)])
	}
}

func BenchmarkLLCAccess(b *testing.B) {
	l := cache.New(config.DefaultLLC(), 128)
	rng := stats.NewRNG(4)
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<26)) &^ 63
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		l.Access(a, i%3 == 0, a>>13)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	p, _ := trace.ProfileByName("gcc")
	g := trace.NewGenerator(p, config.DefaultGeometry(), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkEndToEndSimCyclePerInstr(b *testing.B) {
	w, _ := trace.WorkloadByName("mcf", 2)
	sys := config.Default()
	sys.Core.Cores = 2
	sys.Mitigation = config.DefaultScaleSRS(1200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, sys, sim.Options{Instructions: 50_000}); err != nil {
			b.Fatal(err)
		}
	}
}
