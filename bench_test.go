// Benchmark harness: one testing.B target per table and figure of the
// paper, plus ablation and microarchitecture benches. Security figures
// run their full analytical sweep per iteration and report the headline
// quantity as a custom metric; performance figures run a reduced
// workload subset through the cycle simulator (the full 78-workload
// sweep is available via cmd/rowswap-figures).
//
// Run everything:  go test -bench=. -benchmem
package repro_test

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/tracker"
)

// benchWorkers sizes the experiment-matrix worker pool for the
// simulator-backed benchmarks (0 = GOMAXPROCS, 1 = serial):
//
//	go test -bench QuickMatrix -workers 4 .
var benchWorkers = flag.Int("workers", 0, "matrix worker pool size (0 = GOMAXPROCS, 1 = serial)")

// benchPerfOpts is the reduced configuration for simulator-backed
// figures: 3 representative workloads, 4 cores, short traces.
func benchPerfOpts() report.PerfOptions {
	return report.PerfOptions{
		Workloads: []string{"gcc", "gups", "povray"},
		Cores:     4,
		Workers:   *benchWorkers,
		Sim:       sim.Options{Instructions: 1_000_000},
	}
}

// --- Tables ---

func BenchmarkTable01ThresholdHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Table1(io.Discard)
	}
	b.ReportMetric(config.ThresholdReductionFactor(), "x-reduction")
}

func BenchmarkTable04Storage(b *testing.B) {
	m := storage.NewModel()
	for i := 0; i < b.N; i++ {
		report.Table4(io.Discard)
	}
	b.ReportMetric(m.Reduction(1200), "x-storage-reduction@1200")
}

func BenchmarkTable05Power(b *testing.B) {
	m := power.NewModel()
	for i := 0; i < b.N; i++ {
		report.Table5(io.Discard)
	}
	b.ReportMetric(100*(1-m.ScaleSRS(4800).SRAMmW/m.RRS(4800).SRAMmW), "%-sram-saving")
}

// --- Security figures ---

func BenchmarkFig01aTimeToBreakRRSRandomGuess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Fig1a(io.Discard)
	}
	b.ReportMetric(attack.NewRandomGuessRRS(4800, 6).TimeToBreakDays(0), "days-to-break@4800r6")
}

func BenchmarkFig06JuggernautTimeToBreak(b *testing.B) {
	var days float64
	for i := 0; i < b.N; i++ {
		report.Fig6(io.Discard, 0)
		_, tt := attack.NewJuggernautRRS(4800, 6).BestRounds()
		days = tt / config.Day
	}
	b.ReportMetric(days*24, "hours-to-break@4800r6")
}

func BenchmarkFig06MonteCarlo(b *testing.B) {
	m := attack.NewJuggernautRRS(4800, 6)
	n, _ := m.BestRounds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.MonteCarlo(m, n, 10, 1)
	}
}

func BenchmarkFig07RequiredGuesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Fig7(io.Discard)
	}
}

func BenchmarkFig10SRSTimeToBreak(b *testing.B) {
	var years float64
	for i := 0; i < b.N; i++ {
		report.Fig10(io.Discard)
		_, tt := attack.NewJuggernautSRS(4800, 6).BestRounds()
		years = tt / config.Year
	}
	b.ReportMetric(years, "years-to-break-srs@4800r6")
}

func BenchmarkFig13OutlierAppearance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Fig13(io.Discard)
	}
	b.ReportMetric(attack.NewOutlierModel(4800, 3).TimeToAppearDays(3, 3), "days-to-3-outliers@r3")
}

func BenchmarkSecMultiBankAttack(b *testing.B) {
	m := attack.NewJuggernautRRS(4800, 6)
	m.Banks = 16
	var days float64
	for i := 0; i < b.N; i++ {
		_, tt := m.BestRounds()
		days = tt / config.Day
	}
	b.ReportMetric(days, "days-to-break-16bank")
}

func BenchmarkSecOpenPagePolicy(b *testing.B) {
	m := attack.NewJuggernautRRS(4800, 6)
	m.ACTPeriodNS = 60
	var days float64
	for i := 0; i < b.N; i++ {
		_, tt := m.BestRounds()
		days = tt / config.Day
	}
	b.ReportMetric(days, "days-to-break-openpage")
}

func BenchmarkSecDDR5(b *testing.B) {
	m := attack.NewJuggernautRRS(3100, 10)
	m.Timing = config.DDR5()
	var days float64
	for i := 0; i < b.N; i++ {
		_, tt := m.BestRounds()
		days = tt / config.Day
	}
	b.ReportMetric(days, "days-to-break-ddr5@3100r10")
}

// --- Performance figures (reduced workload subset) ---

func BenchmarkFig04UnswapVsNoUnswap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig4(io.Discard, benchPerfOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12SRSvsRRSPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig12(io.Discard, benchPerfOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14ScaleSRSvsRRS(b *testing.B) {
	var rows []report.PerfRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = report.Fig14(io.Discard, benchPerfOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Workload == "gcc" {
			b.ReportMetric((1-r.Norm["rrs"])*100, "%-gcc-rrs-slowdown")
			b.ReportMetric((1-r.Norm["scale-srs"])*100, "%-gcc-scale-slowdown")
		}
	}
}

func BenchmarkFig15SensitivityTRH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig15(io.Discard, benchPerfOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16HydraTracker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig16(io.Discard, benchPerfOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComparatorsIXA: BlockHammer and AQUA vs Scale-SRS (§IX-A).
func BenchmarkComparatorsIXA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Comparators(io.Discard, benchPerfOpts(), 1200); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulation-kernel benchmarks (perf trajectory) ---

// quickMatrixOpts is the 12-workload quick matrix used to track the
// simulator's own performance: Fig. 14's two configs over every suite.
func quickMatrixOpts(workers int, kernel sim.Kernel) report.PerfOptions {
	return report.PerfOptions{
		Workloads: report.QuickWorkloads,
		Cores:     4,
		Workers:   workers,
		Sim:       sim.Options{Instructions: 150_000, Kernel: kernel},
	}
}

// kernelBench collects the quick-matrix wall-clock measurements that
// TestMain serializes into BENCH_kernel.json after a -bench run.
var kernelBench struct {
	sync.Mutex
	parallelEventSecs float64
	serialEventSecs   float64
	serialCycleSecs   float64
	warmCacheSecs     float64
	workers           int
}

// warmQuickMatrix runs one untimed matrix so the baseline cache is warm
// before measurement: every timed iteration then simulates exactly the
// 24 mitigated runs that writeKernelBench's throughput math assumes,
// regardless of b.N.
func warmQuickMatrix(b *testing.B, popt report.PerfOptions) {
	b.Helper()
	if _, err := report.Fig14(io.Discard, popt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
}

// BenchmarkQuickMatrix is the product path: the 12-workload matrix on
// the event-scheduled kernel with a full worker pool.
func BenchmarkQuickMatrix(b *testing.B) {
	workers := *benchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	popt := quickMatrixOpts(workers, sim.KernelEvent)
	warmQuickMatrix(b, popt)
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig14(io.Discard, popt); err != nil {
			b.Fatal(err)
		}
	}
	secs := time.Since(start).Seconds() / float64(b.N)
	kernelBench.Lock()
	recordMinSecs(&kernelBench.parallelEventSecs, secs)
	kernelBench.workers = workers
	kernelBench.Unlock()
	b.ReportMetric(secs, "s/matrix")
}

// recordMinSecs keeps the fastest measurement across repeated benchmark
// invocations (go test -count=N): wall-clock noise on shared runners is
// strictly additive, so the minimum is the least-contaminated estimate
// of the kernel's actual speed. Callers hold kernelBench.Lock.
func recordMinSecs(dst *float64, secs float64) {
	if *dst == 0 || secs < *dst {
		*dst = secs
	}
}

// BenchmarkQuickMatrixSerialEvent is the single-threaded event-kernel
// figure: the same matrix with a one-worker pool. Recording it next to
// the parallel figure regression-gates both paths — a scheduler or
// contention regression shows up in their ratio even when one of them
// happens to hold steady.
func BenchmarkQuickMatrixSerialEvent(b *testing.B) {
	popt := quickMatrixOpts(1, sim.KernelEvent)
	warmQuickMatrix(b, popt)
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig14(io.Discard, popt); err != nil {
			b.Fatal(err)
		}
	}
	secs := time.Since(start).Seconds() / float64(b.N)
	kernelBench.Lock()
	recordMinSecs(&kernelBench.serialEventSecs, secs)
	kernelBench.Unlock()
	b.ReportMetric(secs, "s/matrix")
}

// BenchmarkQuickMatrixSerialCycleStepped is the pre-refactor baseline:
// the same matrix run serially on the legacy cycle-stepped kernel. The
// ratio to BenchmarkQuickMatrix is the refactor's headline speedup.
func BenchmarkQuickMatrixSerialCycleStepped(b *testing.B) {
	popt := quickMatrixOpts(1, sim.KernelCycle)
	warmQuickMatrix(b, popt)
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig14(io.Discard, popt); err != nil {
			b.Fatal(err)
		}
	}
	secs := time.Since(start).Seconds() / float64(b.N)
	kernelBench.Lock()
	recordMinSecs(&kernelBench.serialCycleSecs, secs)
	kernelBench.Unlock()
	b.ReportMetric(secs, "s/matrix")
}

// BenchmarkQuickMatrixWarmCache is the repeat-invocation path: the same
// matrix with the persistent result cache (internal/simcache) fully
// populated, so every simulation — baselines included — is served from
// disk. The process-wide baseline cache is reset inside the timed loop
// to model a fresh process, exactly what a repeated CLI/CI invocation
// sees. The ratio to BenchmarkQuickMatrixSerialCycleStepped is what a
// re-run of any figure sweep gains.
func BenchmarkQuickMatrixWarmCache(b *testing.B) {
	workers := *benchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	popt := quickMatrixOpts(workers, sim.KernelEvent)
	popt.CacheDir = b.TempDir()
	report.ResetBaselineCache() // force the warm-up to write baselines to disk
	warmQuickMatrix(b, popt)    // populates the on-disk cache
	start := time.Now()
	for i := 0; i < b.N; i++ {
		report.ResetBaselineCache()
		if _, err := report.Fig14(io.Discard, popt); err != nil {
			b.Fatal(err)
		}
	}
	secs := time.Since(start).Seconds() / float64(b.N)
	kernelBench.Lock()
	recordMinSecs(&kernelBench.warmCacheSecs, secs)
	kernelBench.Unlock()
	b.ReportMetric(secs, "s/matrix")
}

// TestMain emits BENCH_kernel.json when both quick-matrix variants ran
// (go test -bench QuickMatrix .), so future PRs can track the
// simulator's perf trajectory machine-readably.
func TestMain(m *testing.M) {
	// Pin the harness to every hardware thread. The bench file once
	// recorded gomaxprocs: 1 from an inherited environment cap, which
	// silently turned the "parallel" figure into a serial one; pinning
	// here makes the recorded parallel/serial pair trustworthy on any
	// runner.
	runtime.GOMAXPROCS(runtime.NumCPU())
	code := m.Run()
	writeKernelBench()
	os.Exit(code)
}

func writeKernelBench() {
	kernelBench.Lock()
	defer kernelBench.Unlock()
	if kernelBench.parallelEventSecs == 0 || kernelBench.serialCycleSecs == 0 {
		return
	}
	// Budgeted instructions per timed matrix: 24 mitigated runs of
	// 4 cores x 150k (baselines are pre-cached by warmQuickMatrix, so
	// they are outside the timed region at any b.N).
	const matrixInstructions = 24 * 4 * 150_000
	regimes, regimeCycles := measureRegimeBreakdown()
	payload := map[string]any{
		"benchmark":                 "QuickMatrix",
		"workloads":                 len(report.QuickWorkloads),
		"cores":                     4,
		"instructions_per_core":     150_000,
		"workers":                   kernelBench.workers,
		"gomaxprocs":                runtime.GOMAXPROCS(0),
		"serial_cycle_seconds":      kernelBench.serialCycleSecs,
		"parallel_event_seconds":    kernelBench.parallelEventSecs,
		"speedup":                   kernelBench.serialCycleSecs / kernelBench.parallelEventSecs,
		"approx_sim_ips":            matrixInstructions / kernelBench.parallelEventSecs,
		"approx_sim_ips_pre_reform": matrixInstructions / kernelBench.serialCycleSecs,
		"hot_path":                  measureHotPaths(),
	}
	if kernelBench.serialEventSecs > 0 {
		payload["serial_event_seconds"] = kernelBench.serialEventSecs
		payload["approx_sim_ips_serial"] = matrixInstructions / kernelBench.serialEventSecs
	}
	if regimeCycles > 0 {
		payload["regime_breakdown"] = map[string]any{
			"compute_cycles":   regimes.ComputeCycles,
			"fill_cycles":      regimes.FillCycles,
			"drain_cycles":     regimes.DrainCycles,
			"stall_cycles":     regimes.StallCycles,
			"stepped_cycles":   regimes.SteppedCycles,
			"ticks":            regimes.Ticks,
			"core_cycles":      regimeCycles,
			"batched_fraction": float64(regimes.BatchedCycles()) / float64(regimeCycles),
		}
	}
	if kernelBench.warmCacheSecs > 0 {
		payload["warm_cache_seconds"] = kernelBench.warmCacheSecs
		payload["warm_cache_speedup"] = kernelBench.serialCycleSecs / kernelBench.warmCacheSecs
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return
	}
	os.WriteFile("BENCH_kernel.json", append(data, '\n'), 0o644)
}

// measureRegimeBreakdown reruns the quick matrix's 24 mitigated cells
// once on the event kernel and sums the cores' regime counters: which
// closed-form path replayed how many cycles, and whether anything fell
// back to per-cycle stepping (the grid tests pin that to zero). The
// per-run results the timed benchmarks produce are discarded inside
// report.Fig14, so this is measured separately here.
func measureRegimeBreakdown() (cpu.RegimeStats, int64) {
	var total cpu.RegimeStats
	var coreCycles int64
	for _, name := range report.QuickWorkloads {
		w, ok := trace.WorkloadByName(name, 4)
		if !ok {
			continue
		}
		for _, mit := range []config.Mitigation{
			config.DefaultRRS(1200),
			config.DefaultScaleSRS(1200),
		} {
			sys := config.Default()
			sys.Core.Cores = 4
			sys.Mitigation = mit
			res, err := sim.Run(w, sys, sim.Options{Instructions: 150_000, Kernel: sim.KernelEvent})
			if err != nil {
				continue
			}
			total.Add(res.Regimes)
			coreCycles += res.Cycles * 4
		}
	}
	return total, coreCycles
}

// measureHotPaths times the three data paths the batched/SoA kernel
// pass restructured — generator slab fill, the per-slot activation
// accounting, and the LLC probe — and returns them for the hot_path
// section of BENCH_kernel.json, so the aggregate sim-IPS trajectory
// stays attributable to its components. Fixed iteration counts keep the
// measurement cheap (well under a second) and deterministic in shape.
func measureHotPaths() map[string]any {
	geo := config.DefaultGeometry()
	p, _ := trace.ProfileByName("gcc")

	// Generator bulk fill: the NextBatch sampling+address pipeline.
	const fillRecords = 1 << 21
	gb := trace.NewGenerator(p, geo, 12345).(trace.BatchStream)
	slab := make([]trace.Record, 4096)
	start := time.Now()
	for n := 0; n < fillRecords; {
		n += gb.NextBatch(slab)
	}
	batchRate := fillRecords / time.Since(start).Seconds()

	// Legacy per-record fill, for attribution of the batching win.
	const nextRecords = 1 << 19
	gn := trace.NewGenerator(p, geo, 12345)
	start = time.Now()
	for i := 0; i < nextRecords; i++ {
		gn.Next()
	}
	nextRate := nextRecords / time.Since(start).Seconds()

	// recordACT via Bank.Access over a random-slot sequence: the packed
	// epoch-counter read-modify-write plus the bank timing updates.
	sys := config.Default()
	mem := dram.NewMemory(sys.Geometry, dram.FromConfig(sys.Timing, sys.Core.ClockGHz))
	tm := mem.Timing()
	rng := stats.NewRNG(9)
	slots := make([]dram.RowID, 8192)
	for i := range slots {
		slots[i] = dram.RowID(rng.Intn(sys.Geometry.RowsPerBank))
	}
	const acts = 1 << 21
	bk := mem.Bank(0)
	start = time.Now()
	for i := 0; i < acts; i++ {
		bk.Access(slots[i%len(slots)], false, dram.Cycles(i)*4, tm)
	}
	actNs := time.Since(start).Seconds() * 1e9 / acts
	mem.Recycle()

	// LLC probe (same shape as BenchmarkLLCAccess).
	l := cache.New(config.DefaultLLC(), 128)
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<26)) &^ 63
	}
	const probes = 1 << 21
	start = time.Now()
	for i := 0; i < probes; i++ {
		a := addrs[i%len(addrs)]
		l.Access(a, i%3 == 0, a>>13)
	}
	llcNs := time.Since(start).Seconds() * 1e9 / probes

	return map[string]any{
		"stream_batch_records_per_sec": batchRate,
		"stream_next_records_per_sec":  nextRate,
		"record_act_ns_per_op":         actNs,
		"llc_access_ns_per_op":         llcNs,
	}
}

// --- Ablations (design decisions called out in DESIGN.md) ---

// AblationSwapRate: Scale-SRS's reduced swap rate is the scalability
// lever — compare swap rate 3 vs 6 at T_RH 1200 on the hot workload.
func BenchmarkAblationSwapRate(b *testing.B) {
	w, _ := trace.WorkloadByName("gcc", 4)
	opt := sim.Options{Instructions: 800_000}
	for i := 0; i < b.N; i++ {
		for _, rate := range []int{3, 6} {
			sys := config.Default()
			sys.Core.Cores = 4
			sys.Mitigation = config.DefaultScaleSRS(1200)
			sys.Mitigation.SwapRate = rate
			if _, err := sim.Run(w, sys, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// AblationPlaceBackRate: SRS's lazy place-back vs the window-end bulk
// unravel of chained swaps (the Fig. 4 motivation).
func BenchmarkAblationPlaceBackRate(b *testing.B) {
	w, _ := trace.WorkloadByName("gcc", 4)
	opt := sim.Options{Instructions: 800_000}
	for i := 0; i < b.N; i++ {
		sys := config.Default()
		sys.Core.Cores = 4
		sys.Mitigation = config.DefaultSRS(1200) // lazy place-back
		if _, err := sim.Run(w, sys, opt); err != nil {
			b.Fatal(err)
		}
		sys.Mitigation = config.DefaultRRS(1200) // chained, bulk unravel
		sys.Mitigation.ImmediateUnswap = false
		if _, err := sim.Run(w, sys, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationTrackerChoice: Misra-Gries (on-chip) vs Hydra (memory-backed).
func BenchmarkAblationTrackerChoice(b *testing.B) {
	w, _ := trace.WorkloadByName("gcc", 4)
	opt := sim.Options{Instructions: 800_000}
	for i := 0; i < b.N; i++ {
		for _, trk := range []config.TrackerKind{config.TrackerMisraGries, config.TrackerHydra} {
			sys := config.Default()
			sys.Core.Cores = 4
			sys.Mitigation = config.DefaultRRS(1200)
			sys.Mitigation.Tracker = trk
			if _, err := sim.Run(w, sys, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// AblationCompactRIT: the §VIII-4 single-table tagged RIT vs the split
// real/mirrored layout — identical behaviour, nearly half the RIT SRAM.
func BenchmarkAblationCompactRIT(b *testing.B) {
	sys := config.Default()
	sys.Geometry.Channels = 1
	sys.Geometry.BanksPerRnk = 2
	sys.Geometry.RowsPerBank = 8192
	sys.Mitigation = config.DefaultSRS(4800)
	for i := 0; i < b.N; i++ {
		for _, compact := range []bool{false, true} {
			mem := dram.NewMemory(sys.Geometry, dram.FromConfig(sys.Timing, sys.Core.ClockGHz))
			var s *core.SRS
			if compact {
				s = core.NewSRSCompact(mem, sys, sys.Mitigation, stats.NewRNG(1))
			} else {
				s = core.NewSRS(mem, sys, sys.Mitigation, stats.NewRNG(1))
			}
			for j := 0; j < 500; j++ {
				s.OnAggressor(j%2, dram.RowID(j%200), dram.Cycles(j)*20_000)
			}
		}
	}
	m := storage.NewModel()
	b.ReportMetric(m.ScaleSRS(1200).RITBytes/m.ScaleSRSCompact(1200).RITBytes, "x-rit-storage-saving")
}

// --- Microarchitecture benches ---

func BenchmarkSwapOperation(b *testing.B) {
	sys := config.Default()
	sys.Mitigation = config.DefaultSRS(4800)
	mem := dram.NewMemory(sys.Geometry, dram.FromConfig(sys.Timing, sys.Core.ClockGHz))
	s := core.NewSRS(mem, sys, sys.Mitigation, stats.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnAggressor(i%32, dram.RowID(i%1000), dram.Cycles(i)*20_000)
		// End an epoch periodically, as the controller does: the RIT is
		// provisioned per epoch and relies on unlocking for eviction.
		if i%1000 == 999 {
			s.OnWindowEnd(dram.Cycles(i) * 20_000)
		}
	}
}

func BenchmarkTrackerRecordMisraGries(b *testing.B) {
	t := tracker.NewMisraGries(32, 1700)
	rng := stats.NewRNG(2)
	rows := make([]int32, 4096)
	for i := range rows {
		rows[i] = int32(rng.Intn(128 * 1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.RecordACT(i%32, rows[i%len(rows)])
	}
}

func BenchmarkTrackerRecordHydra(b *testing.B) {
	t := tracker.NewHydra(32, 128*1024, 128, 400, 2048)
	rng := stats.NewRNG(3)
	rows := make([]int32, 4096)
	for i := range rows {
		rows[i] = int32(rng.Intn(128 * 1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.RecordACT(i%32, rows[i%len(rows)])
	}
}

func BenchmarkLLCAccess(b *testing.B) {
	l := cache.New(config.DefaultLLC(), 128)
	rng := stats.NewRNG(4)
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<26)) &^ 63
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		l.Access(a, i%3 == 0, a>>13)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	p, _ := trace.ProfileByName("gcc")
	g := trace.NewGenerator(p, config.DefaultGeometry(), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkStreamBatch measures the bulk generator fill per record —
// the batched counterpart of BenchmarkTraceGeneration.
func BenchmarkStreamBatch(b *testing.B) {
	p, _ := trace.ProfileByName("gcc")
	g := trace.NewGenerator(p, config.DefaultGeometry(), 5).(trace.BatchStream)
	slab := make([]trace.Record, 4096)
	b.ResetTimer()
	for n := 0; n < b.N; {
		want := b.N - n
		if want > len(slab) {
			want = len(slab)
		}
		n += g.NextBatch(slab[:want])
	}
}

// BenchmarkRecordACT measures the per-activation accounting path: a
// closed-page access on a random slot of a random bank, charging the
// packed epoch-stamped counter exactly as the memory controller does.
func BenchmarkRecordACT(b *testing.B) {
	sys := config.Default()
	mem := dram.NewMemory(sys.Geometry, dram.FromConfig(sys.Timing, sys.Core.ClockGHz))
	tm := mem.Timing()
	rng := stats.NewRNG(6)
	n := 8192
	banks := make([]*dram.Bank, n)
	slots := make([]dram.RowID, n)
	for i := 0; i < n; i++ {
		banks[i] = mem.Bank(rng.Intn(mem.NumBanks()))
		slots[i] = dram.RowID(rng.Intn(sys.Geometry.RowsPerBank))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		banks[i%n].Access(slots[i%n], false, dram.Cycles(i)*4, tm)
	}
	b.StopTimer()
	mem.Recycle()
}

func BenchmarkEndToEndSimCyclePerInstr(b *testing.B) {
	w, _ := trace.WorkloadByName("mcf", 2)
	sys := config.Default()
	sys.Core.Cores = 2
	sys.Mitigation = config.DefaultScaleSRS(1200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, sys, sim.Options{Instructions: 50_000}); err != nil {
			b.Fatal(err)
		}
	}
}
